"""Hypergraph structure of a weighted local CSP.

The paper's CSP extension of LubyGlauber (remark after Algorithm 1)
"overrides the definition of neighbourhood as
``Gamma(v) = {u != v : exists c, {u, v} subseteq S_c}``, thus ``Gamma(v)`` is
the neighbourhood of ``v`` in the hypergraph where the ``S_c`` are the
hyperedges, and ``I`` is the *strongly independent set* of this hypergraph"
— i.e. no two selected vertices share any constraint.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.csp.model import LocalCSP

__all__ = ["csp_neighbors", "conflict_graph", "is_strongly_independent"]


def csp_neighbors(csp: LocalCSP) -> list[set[int]]:
    """Return ``Gamma(v)`` for each vertex: co-scoped vertices."""
    neighborhoods: list[set[int]] = [set() for _ in range(csp.n)]
    for constraint in csp.constraints:
        scope = constraint.scope
        for u in scope:
            for v in scope:
                if u != v:
                    neighborhoods[u].add(v)
    return neighborhoods


def conflict_graph(csp: LocalCSP) -> nx.Graph:
    """Return the primal/conflict graph: ``u ~ v`` iff they share a constraint.

    Independent sets of this graph are exactly the strongly independent sets
    of the CSP hypergraph, so the Luby step on the conflict graph yields a
    valid LubyGlauber schedule for the CSP.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(csp.n))
    for constraint in csp.constraints:
        scope = constraint.scope
        for i, u in enumerate(scope):
            for v in scope[i + 1 :]:
                graph.add_edge(u, v)
    return graph


def is_strongly_independent(csp: LocalCSP, vertices: Iterable[int]) -> bool:
    """Return True iff no constraint scope contains two of ``vertices``."""
    chosen = set(vertices)
    for constraint in csp.constraints:
        if len(chosen.intersection(constraint.scope)) >= 2:
            return False
    return True
