"""The ideal coupling on the Δ-regular tree (paper Section 4.2.1).

The ``2 + sqrt(2)`` threshold of Theorem 1.2 comes from an *ideal* coupling
analysed on a rooted Δ-regular tree: the two chains disagree only at the
root, every other vertex carries a common colour outside
``{X_root, Y_root}``, and proposals are coupled in a breadth-first fashion —
children of the root always couple through the transposition of
``{X_root, Y_root}``; deeper vertices couple identically unless their
parent's proposals split, in which case they switch to the transposition.

This module materialises that scenario and runs the coupled LocalMetropolis
step, so the paper's closed-form bounds

    Pr[X'_root != Y'_root] <= 1 - (1 - Δ/q)(1 - 2/q)^Δ
    Pr[X'_u   != Y'_u  ]  <= (1/2) (1 - 2/q)^(Δ-1) (2/q)^ℓ     (depth ℓ)

can be checked against simulation (experiment E5's tree table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import ModelError

__all__ = ["IdealTree", "build_ideal_tree", "ideal_coupling_step", "ideal_coupling_trial_means"]


@dataclass
class IdealTree:
    """A rooted Δ-regular tree with the Section 4.2.1 initial pair.

    Attributes
    ----------
    graph:
        The tree; vertex 0 is the root.  The root has ``delta`` children,
        every other internal vertex ``delta - 1``, so all internal degrees
        equal ``delta``.
    depth_of:
        Vertex depth (root = 0).
    parent_of:
        Parent index (root maps to -1).
    x, y:
        The initial configurations: ``x`` and ``y`` agree everywhere except
        the root (colours 0 vs 1); other vertices alternate colours 2/3 by
        depth parity, giving proper colourings avoiding ``{0, 1}``.
    q, delta, depth:
        Model parameters.
    """

    graph: nx.Graph
    depth_of: list[int]
    parent_of: list[int]
    x: np.ndarray
    y: np.ndarray
    q: int
    delta: int
    depth: int
    children_of: list[list[int]] = field(default_factory=list)


def build_ideal_tree(delta: int, depth: int, q: int) -> IdealTree:
    """Construct the Section 4.2.1 scenario.

    Requires ``q >= 4`` (colours 0, 1 for the root disagreement plus the
    alternating 2/3 background).
    """
    if delta < 2:
        raise ModelError(f"ideal tree needs delta >= 2, got {delta}")
    if depth < 1:
        raise ModelError(f"ideal tree needs depth >= 1, got {depth}")
    if q < 4:
        raise ModelError(f"ideal tree scenario needs q >= 4, got {q}")
    graph = nx.Graph()
    graph.add_node(0)
    depth_of = [0]
    parent_of = [-1]
    frontier = [0]
    next_label = 1
    for level in range(1, depth + 1):
        new_frontier = []
        for vertex in frontier:
            fanout = delta if vertex == 0 else delta - 1
            for _ in range(fanout):
                graph.add_edge(vertex, next_label)
                depth_of.append(level)
                parent_of.append(vertex)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    n = next_label
    x = np.empty(n, dtype=np.int64)
    for v in range(n):
        x[v] = 2 + (depth_of[v] % 2)
    x[0] = 0
    y = x.copy()
    y[0] = 1
    children_of: list[list[int]] = [[] for _ in range(n)]
    for v in range(1, n):
        children_of[parent_of[v]].append(v)
    return IdealTree(
        graph=graph,
        depth_of=depth_of,
        parent_of=parent_of,
        x=x,
        y=y,
        q=q,
        delta=delta,
        depth=depth,
        children_of=children_of,
    )


def _accepts(tree: IdealTree, config: np.ndarray, proposals: np.ndarray, v: int) -> bool:
    """Colouring filter of Algorithm 2 at ``v`` (rules 1-3 over all edges)."""
    cv = proposals[v]
    for u in tree.graph.neighbors(v):
        if cv == proposals[u] or cv == config[u] or config[v] == proposals[u]:
            return False
    return True


def ideal_coupling_step(tree: IdealTree, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """One coupled LocalMetropolis step under the ideal coupling.

    Returns the pair ``(X', Y')``.  Proposals are coupled breadth-first:
    the root consistently; the root's children through the transposition
    ``phi`` of ``{X_root, Y_root}``; deeper vertices consistently unless
    their parent's proposals differ, in which case through ``phi``.
    """
    n = tree.x.shape[0]
    a, b = int(tree.x[0]), int(tree.y[0])

    def phi(color: int) -> int:
        if color == a:
            return b
        if color == b:
            return a
        return color

    proposals_x = rng.integers(0, tree.q, size=n)
    proposals_y = proposals_x.copy()
    # Breadth-first is vertex order by construction (labels grow with depth).
    for v in range(1, n):
        parent = tree.parent_of[v]
        permuted = parent == 0 or proposals_x[parent] != proposals_y[parent]
        if permuted:
            proposals_y[v] = phi(int(proposals_x[v]))
    new_x = tree.x.copy()
    new_y = tree.y.copy()
    for v in range(n):
        if _accepts(tree, tree.x, proposals_x, v):
            new_x[v] = proposals_x[v]
        if _accepts(tree, tree.y, proposals_y, v):
            new_y[v] = proposals_y[v]
    return new_x, new_y


def ideal_coupling_trial_means(
    tree: IdealTree, trials: int, seed: int | None = 0
) -> dict[str, float | dict[int, float]]:
    """Monte-Carlo estimates of the Section 4.2.1 quantities.

    Returns a dict with the root disagreement probability, the per-depth
    disagreement rates (averaged over vertices at each depth), and the
    expected total number of disagreeing vertices after one coupled step.
    """
    if trials < 1:
        raise ModelError("trials must be >= 1")
    rng = np.random.default_rng(seed)
    n = tree.x.shape[0]
    disagree_counts = np.zeros(n)
    for _ in range(trials):
        new_x, new_y = ideal_coupling_step(tree, rng)
        disagree_counts += new_x != new_y
    rates = disagree_counts / trials
    per_depth: dict[int, float] = {}
    for level in range(tree.depth + 1):
        members = [v for v in range(n) if tree.depth_of[v] == level]
        per_depth[level] = float(np.mean([rates[v] for v in members]))
    return {
        "root_disagreement": float(rates[0]),
        "per_depth": per_depth,
        "expected_total": float(rates.sum()),
    }
