"""E20 — dynamic graphs: incremental region resampling vs full re-runs.

The dynamic layer (:class:`repro.dynamic.DynamicEnsemble`) answers a
single-edge mutation by resampling only the influence ball of the touched
vertices with the boundary clamped, for a round budget governed by the
region size |S| instead of n.  On a bounded-degree graph the ball has
O(1) size, so the per-mutation cost is O(log |S|) region rounds over
O(|S| * R) sites — versus O(log n) full rounds over O(n * R) sites for a
from-scratch re-run on the mutated model.

This experiment mixes one ensemble on a paper-scale torus colouring, then
times a sequence of single-edge removals handled two ways:

* **incremental** — ``remove_edge`` + ``resample()`` on the live
  ``DynamicEnsemble`` (engine rebuild + clamped region re-mix), and
* **full re-run** — a fresh ensemble on the mutated model advanced for
  the method's full default round budget.

Both paths are distributionally equivalent (the statutils equivalence
suite in ``tests/test_dynamic.py`` is the correctness side of this
claim); E20 measures the wall-clock separation.  The acceptance
criterion — incremental handles a single-edge mutation >= 5x faster than
a full re-run at n >= 4096 — is asserted at full benchmark size.

Set ``REPRO_BENCH_SMOKE=1`` for CI-smoke sizes; the 5x assertion is only
enforced at full size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import report, write_bench_json
from repro.api import default_round_budget, make_ensemble
from repro.dynamic import DynamicEnsemble
from repro.graphs import torus_graph
from repro.mrf import proper_coloring_mrf

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

SIDE = 16 if SMOKE else 64  # n = SIDE^2: 256 smoke, 4096 full
Q = 8
REPLICAS = 4 if SMOKE else 8
MUTATIONS = 2 if SMOKE else 4
RADIUS = 2
EPS = 0.05
METHOD = "luby-glauber"
SEED = 20170625


def _measure() -> dict[str, float]:
    model = proper_coloring_mrf(torus_graph(SIDE, SIDE), Q)
    dyn = DynamicEnsemble(
        model, REPLICAS, method=METHOD, eps=EPS, radius=RADIUS, seed=SEED
    )
    dyn.mix()  # paid once; the dynamic workflow amortises it over mutations

    # Well-spaced distinct edges so the influence balls do not overlap.
    stride = len(model.edges) // MUTATIONS
    edges = [model.edges[i * stride] for i in range(MUTATIONS)]

    incremental, region_sizes = [], []
    for u, v in edges:
        start = time.perf_counter()
        dyn.remove_edge(u, v)
        region_sizes.append(int(dyn.pending_region.size))
        dyn.resample()
        incremental.append(time.perf_counter() - start)

    # Full re-runs on the final mutated model: fresh ensemble, full budget.
    mutated = dyn.model
    full_rounds = default_round_budget(mutated, METHOD, EPS)
    full = []
    for i in range(MUTATIONS):
        start = time.perf_counter()
        engine = make_ensemble(mutated, REPLICAS, method=METHOD, seed=SEED + 1 + i)
        engine.advance(full_rounds)
        full.append(time.perf_counter() - start)

    return {
        "n": SIDE * SIDE,
        "full_rounds": full_rounds,
        "mean_region": float(np.mean(region_sizes)),
        "incremental_ms": float(np.mean(incremental) * 1e3),
        "full_ms": float(np.mean(full) * 1e3),
        "incremental_events_per_sec": MUTATIONS / sum(incremental),
        "full_reruns_per_sec": MUTATIONS / sum(full),
        "speedup": float(np.mean(full) / np.mean(incremental)),
    }


def test_incremental_resampling_speedup():
    values = _measure()
    write_bench_json(
        "E20",
        {
            "incremental_events_per_sec": values["incremental_events_per_sec"],
            "full_reruns_per_sec": values["full_reruns_per_sec"],
            "incremental_speedup_x": values["speedup"],
        },
        smoke=SMOKE,
    )
    lines = [
        f"model: proper colouring (q={Q}) on the {SIDE}x{SIDE} torus "
        f"(n={values['n']}), R={REPLICAS}, method={METHOD}",
        f"{MUTATIONS} single-edge removals; influence radius {RADIUS} "
        f"(mean region {values['mean_region']:.0f} of {values['n']} vertices)",
        f"full re-run budget: {values['full_rounds']} rounds at eps={EPS}",
        f"{'path':>12} {'ms/event':>10} {'events/s':>10} {'speedup':>9}",
        f"{'full rerun':>12} {values['full_ms']:>10.1f} "
        f"{values['full_reruns_per_sec']:>10.3g} {'1.0x':>9}",
        f"{'incremental':>12} {values['incremental_ms']:>10.1f} "
        f"{values['incremental_events_per_sec']:>10.3g} "
        f"{values['speedup']:>8.1f}x",
        "",
        "claim: region-restricted resampling answers a single-edge",
        "mutation >= 5x faster than re-running the mutated model from",
        "scratch, while staying distributionally equivalent (the",
        "statutils equivalence suite is the correctness half).",
    ]
    report("E20", "incremental resampling vs full re-run", lines)
    if not SMOKE:
        assert values["speedup"] >= 5.0, (
            f"incremental speedup {values['speedup']:.1f}x is below the "
            "5x acceptance criterion at full benchmark size"
        )
