"""Independent per-node randomness.

The paper's lower-bound section models each vertex ``v`` as holding an
independent random variable ``Psi_v``; the output of a ``t``-round protocol
at ``v`` is ``Pi_{v,I}(Psi_u : u in B_t(v))``.  To honour this we give every
node its own ``numpy.random.Generator`` derived from a single root seed via
``SeedSequence.spawn`` — streams are statistically independent and the whole
run is reproducible from one integer.
"""

from __future__ import annotations

import numpy as np

from repro.chains.base import SeedLike, as_seed_sequence

__all__ = ["spawn_node_rngs", "root_seed_sequence"]


def root_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce ``seed`` into a ``SeedSequence`` (shared :data:`SeedLike` surface).

    Thin alias for :func:`repro.chains.base.as_seed_sequence`, kept so the
    LOCAL runtime keeps reading in its own vocabulary; a Generator seed
    draws one int to form the root (same semantics everywhere).
    """
    return as_seed_sequence(seed)


def spawn_node_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators — one ``Psi_v`` per node."""
    root = root_seed_sequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]
