"""Property-style fuzz tests for :mod:`repro.csp.hypergraph` invariants.

Seeded random weighted CSPs of arity 1-3 exercise the three structural
primitives the CSP chains are built on:

* ``csp_neighbors`` is symmetric and contains exactly the co-scoped pairs;
* ``conflict_graph`` is the graph whose adjacency *is* ``csp_neighbors``
  (and in particular arity-1 constraints create no edges);
* ``is_strongly_independent`` agrees with pairwise non-adjacency in the
  conflict graph — the property that makes the Luby step on the conflict
  graph a valid strongly-independent-set schedule.
"""

import itertools

import numpy as np
import pytest

from repro.csp import (
    LocalCSP,
    Constraint,
    conflict_graph,
    csp_neighbors,
    is_strongly_independent,
)

FUZZ_SEEDS = range(30)


def random_csp(rng: np.random.Generator) -> LocalCSP:
    """A random weighted local CSP with arities in 1..3."""
    n = int(rng.integers(2, 9))
    q = int(rng.integers(2, 5))
    constraints = []
    for index in range(int(rng.integers(1, 9))):
        arity = int(rng.integers(1, min(3, n) + 1))
        scope = rng.choice(n, size=arity, replace=False)
        table = rng.uniform(0.1, 1.0, size=(q,) * arity)
        # Sprinkle hard zeros without ever zeroing the whole table.
        zeros = rng.random(table.shape) < 0.3
        zeros.flat[int(rng.integers(table.size))] = False
        table[zeros] = 0.0
        constraints.append(Constraint(scope, table, name=f"fuzz{index}"))
    return LocalCSP(n, q, constraints)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_csp_neighbors_symmetric_and_coscoped(seed):
    csp = random_csp(np.random.default_rng(seed))
    neighborhoods = csp_neighbors(csp)
    coscoped = {
        (u, v)
        for c in csp.constraints
        for u in c.scope
        for v in c.scope
        if u != v
    }
    for v, neighbours in enumerate(neighborhoods):
        assert v not in neighbours
        for u in neighbours:
            assert v in neighborhoods[u], "csp_neighbors must be symmetric"
            assert (u, v) in coscoped
    for u, v in coscoped:
        assert v in neighborhoods[u]


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_conflict_graph_adjacency_is_csp_neighbors(seed):
    csp = random_csp(np.random.default_rng(seed))
    graph = conflict_graph(csp)
    neighborhoods = csp_neighbors(csp)
    assert graph.number_of_nodes() == csp.n
    for v in range(csp.n):
        assert set(graph.neighbors(v)) == neighborhoods[v]
    # Symmetry of the adjacency relation itself.
    for u, v in graph.edges():
        assert graph.has_edge(v, u)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_strongly_independent_matches_conflict_graph(seed):
    rng = np.random.default_rng(seed)
    csp = random_csp(rng)
    graph = conflict_graph(csp)
    subsets = [
        [int(u) for u in rng.choice(csp.n, size=size, replace=False)]
        for size in range(0, csp.n + 1)
        for _ in range(3)
    ]
    for vertices in subsets:
        pairwise_independent = all(
            not graph.has_edge(u, v) for u, v in itertools.combinations(vertices, 2)
        )
        assert is_strongly_independent(csp, vertices) == pairwise_independent


def test_arity_one_constraints_create_no_neighbours():
    table = np.array([0.5, 1.0])
    csp = LocalCSP(4, 2, [Constraint((v,), table) for v in range(4)])
    assert conflict_graph(csp).number_of_edges() == 0
    assert all(len(s) == 0 for s in csp_neighbors(csp))
    assert is_strongly_independent(csp, range(4))
