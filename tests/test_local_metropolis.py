"""Behavioural tests for the LocalMetropolis chain (Algorithm 2)."""

import numpy as np
import pytest

from repro.analysis import empirical_distribution
from repro.chains import LocalMetropolisChain
from repro.graphs import cycle_graph, grid_graph, path_graph, star_graph
from repro.mrf import (
    exact_gibbs_distribution,
    hardcore_mrf,
    ising_mrf,
    proper_coloring_mrf,
)


class TestDynamics:
    def test_preserves_feasibility(self):
        mrf = proper_coloring_mrf(grid_graph(4, 4), 16)
        chain = LocalMetropolisChain(mrf, seed=0)
        chain.run(40)
        assert chain.is_feasible()

    def test_escapes_infeasible_start(self):
        mrf = proper_coloring_mrf(cycle_graph(6), 4)
        chain = LocalMetropolisChain(mrf, initial=np.zeros(6, dtype=int), seed=1)
        chain.run(150)
        assert chain.is_feasible()

    def test_never_degrades_feasibility_per_round(self):
        """Filter rules 1-2 guarantee the chain never moves to a 'less
        proper' colouring: monochromatic edge count is non-increasing."""
        mrf = proper_coloring_mrf(cycle_graph(8), 5)

        def bad_edges(config):
            return sum(1 for u, v in mrf.edges if config[u] == config[v])

        chain = LocalMetropolisChain(mrf, initial=np.zeros(8, dtype=int), seed=2)
        previous = bad_edges(chain.config)
        for _ in range(80):
            chain.step()
            current = bad_edges(chain.config)
            assert current <= previous
            previous = current

    def test_long_run_matches_gibbs_coloring(self):
        mrf = proper_coloring_mrf(path_graph(3), 4)
        gibbs = exact_gibbs_distribution(mrf)
        chain = LocalMetropolisChain(mrf, seed=3)
        chain.run(30)
        samples = []
        for _ in range(10_000):
            chain.step()
            chain.step()  # thin to tame autocorrelation
            samples.append(tuple(int(s) for s in chain.config))
        assert gibbs.tv_distance(empirical_distribution(samples, mrf.n, mrf.q)) < 0.05

    def test_long_run_matches_gibbs_soft_model(self):
        """Soft activities exercise the random edge coins."""
        mrf = ising_mrf(path_graph(3), beta=1.5, field=0.8)
        gibbs = exact_gibbs_distribution(mrf)
        chain = LocalMetropolisChain(mrf, seed=4)
        chain.run(50)
        samples = []
        for _ in range(8000):
            chain.step()
            samples.append(tuple(int(s) for s in chain.config))
        assert gibbs.tv_distance(empirical_distribution(samples, mrf.n, mrf.q)) < 0.05

    def test_long_run_matches_gibbs_hardcore(self):
        mrf = hardcore_mrf(path_graph(3), 1.5)
        gibbs = exact_gibbs_distribution(mrf)
        chain = LocalMetropolisChain(mrf, seed=5)
        chain.run(50)
        samples = []
        for _ in range(8000):
            chain.step()
            samples.append(tuple(int(s) for s in chain.config))
        assert gibbs.tv_distance(empirical_distribution(samples, mrf.n, mrf.q)) < 0.05

    def test_proposals_follow_vertex_activities(self):
        """With dominant field, all-ones is reached and held."""
        mrf = ising_mrf(path_graph(4), beta=1.0, field=60.0)
        chain = LocalMetropolisChain(mrf, seed=6)
        chain.run(400)
        assert tuple(chain.config) == (1, 1, 1, 1)

    def test_high_degree_graph_still_converges(self):
        """Star with q >> Delta: LocalMetropolis handles unbounded degree."""
        mrf = proper_coloring_mrf(star_graph(20), 80)
        chain = LocalMetropolisChain(mrf, initial=np.zeros(21, dtype=int), seed=7)
        chain.run(60)
        assert chain.is_feasible()


class TestRoundsBound:
    def test_logarithmic_shape(self):
        small = proper_coloring_mrf(path_graph(8), 8)
        large = proper_coloring_mrf(path_graph(64), 8)
        t_small = LocalMetropolisChain(small, seed=0).rounds_bound(0.01)
        t_large = LocalMetropolisChain(large, seed=0).rounds_bound(0.01)
        # 8x the vertices adds only an additive log factor.
        assert t_large - t_small < t_small
        assert t_large > t_small

    def test_rejects_bad_eps(self):
        mrf = proper_coloring_mrf(path_graph(4), 4)
        with pytest.raises(ValueError):
            LocalMetropolisChain(mrf, seed=0).rounds_bound(1.5)
