"""E9 — the weighted-local-CSP extensions (remarks after Algorithms 1-2).

Verifies exactly that the CSP LocalMetropolis (2^k - 1-factor filter) keeps
the CSP Gibbs distribution stationary across constraint types, and measures
both CSP chains' step throughput on a dominating-set model.
"""

from __future__ import annotations


from benchmarks.conftest import report
from repro.chains.csp_chains import (
    LocalMetropolisCSP,
    LubyGlauberCSP,
    local_metropolis_csp_transition_matrix,
)
from repro.chains.transition import is_reversible, stationary_distribution
from repro.csp import (
    coloring_csp,
    dominating_set_csp,
    exact_csp_gibbs_distribution,
    mrf_as_csp,
    not_all_equal_csp,
)
from repro.graphs import grid_graph, path_graph
from repro.mrf import ising_mrf

CASES = [
    ("dominating-set P4", lambda: dominating_set_csp(path_graph(4))),
    ("dominating w=2 P4", lambda: dominating_set_csp(path_graph(4), weight=2.0)),
    ("coloring-as-csp P3", lambda: coloring_csp(path_graph(3), 3)),
    ("NAE 3-uniform q=3", lambda: not_all_equal_csp([(0, 1, 2), (1, 2, 3)], 4, 3)),
    ("ising-as-csp P3", lambda: mrf_as_csp(ising_mrf(path_graph(3), 1.4, 0.8))),
]


def stationarity_rows() -> list[str]:
    lines = [f"{'CSP':<20} {'max arity':>9} {'TV(pi, mu)':>12} {'reversible':>10}"]
    for name, make in CASES:
        csp = make()
        arity = max(c.arity for c in csp.constraints)
        matrix = local_metropolis_csp_transition_matrix(csp)
        gibbs = exact_csp_gibbs_distribution(csp)
        pi = stationary_distribution(matrix)
        tv = gibbs.tv_distance(pi)
        reversible = is_reversible(matrix, gibbs.probs, atol=1e-9)
        lines.append(f"{name:<20} {arity:>9} {tv:>12.2e} {str(reversible):>10}")
        assert tv < 1e-8 and reversible
    return lines


def throughput_rows() -> list[str]:
    csp = dominating_set_csp(grid_graph(8, 8))
    rounds = 200
    lines = [f"dominating set on 8x8 grid (n=64, {len(csp.constraints)} constraints)"]
    for name, chain_cls in (("LubyGlauberCSP", LubyGlauberCSP), ("LocalMetropolisCSP", LocalMetropolisCSP)):
        chain = chain_cls(csp, seed=0)
        chain.run(rounds)
        feasible = chain.is_feasible()
        lines.append(f"{name:<20} ran {rounds} rounds; feasible output: {feasible}")
        assert feasible
    return lines


def test_e9_csp_extension(benchmark):
    stationarity = stationarity_rows()
    throughput = benchmark.pedantic(throughput_rows, rounds=1, iterations=1)
    report(
        "E9",
        "weighted local CSP extensions (Sec 3/4 remarks)",
        stationarity
        + [""]
        + throughput
        + [
            "",
            "paper claim: both chains extend to weighted local CSPs — LubyGlauber",
            "via strongly independent sets of the constraint hypergraph,",
            "LocalMetropolis via the product of 2^k - 1 normalised factors.",
            "measured: exact stationarity/reversibility across unary, binary and",
            "ternary constraints, hard and soft.",
        ],
    )
