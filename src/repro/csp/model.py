"""Weighted local CSPs: constraints ``(f_c, S_c)`` and their Gibbs measures.

The weight of a configuration is ``w(sigma) = prod_c f_c(sigma|_{S_c})`` and
the Gibbs distribution is proportional to it (paper Section 2.2).  Boolean
constraint functions make mu the uniform distribution over CSP solutions —
the "local sampling" counterpart of LCL problems.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError, StateSpaceTooLargeError
from repro.mrf.distribution import GibbsDistribution
from repro.serialize import payload_fingerprint

__all__ = ["Constraint", "LocalCSP", "exact_csp_gibbs_distribution"]


class Constraint:
    """One weighted constraint ``(f_c, S_c)``.

    Parameters
    ----------
    scope:
        The ordered tuple of distinct vertices ``S_c``.
    table:
        A non-negative array of shape ``(q,) * len(scope)``;
        ``table[sigma_{s1}, ..., sigma_{sk}]`` is ``f_c`` evaluated on the
        restriction of the configuration to the scope.
    name:
        Optional label for error messages and reports.
    """

    def __init__(self, scope: Sequence[int], table: np.ndarray, name: str = "constraint") -> None:
        self.scope = tuple(int(v) for v in scope)
        if len(set(self.scope)) != len(self.scope):
            raise ModelError(f"{name}: scope vertices must be distinct, got {self.scope}")
        if not self.scope:
            raise ModelError(f"{name}: scope must be non-empty")
        table = np.asarray(table, dtype=float)
        if table.ndim != len(self.scope):
            raise ModelError(
                f"{name}: table must have one axis per scope vertex "
                f"({len(self.scope)}), got shape {table.shape}"
            )
        sizes = set(table.shape)
        if len(sizes) != 1:
            raise ModelError(f"{name}: all table axes must share the domain size")
        if not np.all(np.isfinite(table)):
            raise ModelError(
                f"{name}: constraint function must be finite (no NaN/inf entries "
                "— a non-finite factor makes the max-normalisation emit NaN)"
            )
        if np.any(table < 0):
            raise ModelError(f"{name}: constraint function must be non-negative")
        if np.all(table == 0):
            raise ModelError(f"{name}: constraint function must not be identically zero")
        self.table = table.copy()
        self.table.setflags(write=False)
        self.name = name

    @property
    def arity(self) -> int:
        """Return ``|S_c|``."""
        return len(self.scope)

    @property
    def q(self) -> int:
        """Return the spin-domain size the table was built for."""
        return self.table.shape[0]

    def evaluate(self, config: Sequence[int]) -> float:
        """Return ``f_c(sigma|_{S_c})`` for a full configuration ``sigma``."""
        return float(self.table[tuple(config[v] for v in self.scope)])

    def evaluate_scope(self, local: Sequence[int]) -> float:
        """Return ``f_c`` on spins given in scope order."""
        return float(self.table[tuple(int(s) for s in local)])

    def normalized_table(self) -> np.ndarray:
        """Return ``f̃_c = f_c / max f_c`` — the LocalMetropolis filter factor.

        Raises :class:`repro.errors.ModelError` if the table is
        non-normalisable (maximum not strictly positive and finite), which
        would otherwise silently produce NaN filter probabilities.
        """
        maximum = float(self.table.max())
        if not np.isfinite(maximum) or maximum <= 0.0:
            raise ModelError(
                f"{self.name}: non-normalisable constraint (max factor "
                f"{maximum}); cannot form the LocalMetropolis filter"
            )
        return self.table / maximum

    def to_dict(self) -> dict:
        """Canonical plain-JSON form (scope order preserved, float64 table)."""
        return {
            "name": self.name,
            "scope": list(self.scope),
            "table": self.table.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> Constraint:
        """Rebuild a :class:`Constraint` from a :meth:`to_dict` payload."""
        try:
            return cls(
                payload["scope"],
                np.asarray(payload["table"], dtype=float),
                name=str(payload.get("name", "constraint")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ModelError(f"malformed constraint payload: {error}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constraint(name={self.name!r}, scope={self.scope})"


class LocalCSP:
    """A weighted CSP over vertices ``0..n-1`` with spin domain ``[q]``."""

    def __init__(self, n: int, q: int, constraints: Sequence[Constraint], name: str = "csp") -> None:
        if n < 1:
            raise ModelError(f"LocalCSP needs n >= 1, got {n}")
        if q < 2:
            raise ModelError(f"LocalCSP needs q >= 2, got {q}")
        self.n = int(n)
        self.q = int(q)
        self.name = name
        self.constraints = list(constraints)
        for constraint in self.constraints:
            if constraint.q != q:
                raise ModelError(
                    f"{constraint.name}: table domain {constraint.q} != CSP domain {q}"
                )
            if any(v < 0 or v >= n for v in constraint.scope):
                raise ModelError(
                    f"{constraint.name}: scope {constraint.scope} outside 0..{n - 1}"
                )
        # Constraints incident to each vertex, used by conditional marginals.
        self.incident: list[list[int]] = [[] for _ in range(n)]
        for index, constraint in enumerate(self.constraints):
            for v in constraint.scope:
                self.incident[v].append(index)

    def weight(self, config: Sequence[int]) -> float:
        """Return ``w(sigma) = prod_c f_c(sigma|_{S_c})``."""
        if len(config) != self.n:
            raise ModelError(f"configuration length {len(config)} != {self.n}")
        weight = 1.0
        for constraint in self.constraints:
            weight *= constraint.evaluate(config)
            if weight == 0.0:
                return 0.0
        return weight

    def is_feasible(self, config: Sequence[int]) -> bool:
        """Return True iff ``config`` has positive weight."""
        return self.weight(config) > 0.0

    def conditional_marginal(self, config: Sequence[int], v: int) -> np.ndarray:
        """Return ``mu_v(. | X_{V \\ v})`` — proportional to the incident factors.

        Raises :class:`repro.errors.ModelError` if the normaliser vanishes.
        """
        weights = np.ones(self.q)
        for index in self.incident[v]:
            constraint = self.constraints[index]
            base = [int(config[u]) for u in constraint.scope]
            position = constraint.scope.index(v)
            for spin in range(self.q):
                base[position] = spin
                weights[spin] *= constraint.evaluate_scope(base)
        total = weights.sum()
        if total <= 0.0:
            raise ModelError(
                f"CSP conditional marginal at vertex {v} is undefined (zero mass)"
            )
        return weights / total

    # ------------------------------------------------------------------
    # copy-on-write mutation
    # ------------------------------------------------------------------
    def with_constraint(self, constraint: Constraint) -> LocalCSP:
        """Return a copy with ``constraint`` appended (copy-on-write).

        :class:`Constraint` objects are immutable (frozen tables), so the
        derived model shares them with ``self``; only the index lists are
        rebuilt.  :meth:`model_fingerprint` reflects the mutation
        automatically because fingerprints are computed on demand.
        """
        return LocalCSP(
            self.n, self.q, [*self.constraints, constraint], name=self.name
        )

    def without_constraint(self, index: int) -> LocalCSP:
        """Return a copy with constraint ``index`` removed (copy-on-write)."""
        index = int(index)
        if not (0 <= index < len(self.constraints)):
            raise ModelError(
                f"constraint index {index} outside 0..{len(self.constraints) - 1}"
            )
        remaining = [
            constraint
            for position, constraint in enumerate(self.constraints)
            if position != index
        ]
        return LocalCSP(self.n, self.q, remaining, name=self.name)

    def to_dict(self) -> dict:
        """Canonical plain-JSON form; inverse of :meth:`from_dict`.

        Constraint *order* is preserved: it does not change the Gibbs
        distribution, but it does fix the factor-evaluation order of the
        chains, which is part of the bit-level determinism contract the
        serving cache relies on.
        """
        return {
            "type": "csp",
            "name": self.name,
            "n": self.n,
            "q": self.q,
            "constraints": [constraint.to_dict() for constraint in self.constraints],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> LocalCSP:
        """Rebuild a :class:`LocalCSP` from a :meth:`to_dict` payload."""
        try:
            n = int(payload["n"])
            q = int(payload["q"])
            constraint_payloads = payload["constraints"]
            name = str(payload.get("name", "csp"))
        except (KeyError, TypeError, ValueError) as error:
            raise ModelError(f"malformed CSP payload: {error}") from None
        constraints = [Constraint.from_dict(entry) for entry in constraint_payloads]
        return cls(n, q, constraints, name=name)

    def model_fingerprint(self) -> str:
        """Stable content hash of the distribution-defining payload.

        Model and constraint names are cosmetic and excluded (see
        :meth:`repro.mrf.model.MRF.model_fingerprint` for the contract);
        scope order, constraint order and every table value are hashed.
        """
        payload = self.to_dict()
        del payload["name"]
        for entry in payload["constraints"]:
            del entry["name"]
        return payload_fingerprint(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalCSP(name={self.name!r}, n={self.n}, q={self.q}, constraints={len(self.constraints)})"


def exact_csp_gibbs_distribution(csp: LocalCSP, max_states: int = 2_000_000) -> GibbsDistribution:
    """Materialise the exact Gibbs distribution of a small CSP."""
    size = csp.q ** csp.n
    if size > max_states:
        raise StateSpaceTooLargeError(
            f"state space {csp.q}**{csp.n} = {size} exceeds max_states={max_states}"
        )
    weights = np.empty(size)
    for i, config in enumerate(itertools.product(range(csp.q), repeat=csp.n)):
        weights[i] = csp.weight(config)
    if weights.sum() <= 0.0:
        raise ModelError("CSP has no feasible configuration (Z = 0)")
    return GibbsDistribution(csp.n, csp.q, weights)
