"""Persistent multiprocess worker pool for sharded replica ensembles.

One :class:`ShardedEnsemble` owns a shard plan (:mod:`repro.exec.shards`)
and executes it either in-process (``workers=0``, the bit-identical
reference) or on a pool of persistent OS processes.  The pool is built for
the access pattern of the convergence pipeline — few large ``advance``
commands, a state read at each checkpoint — and keeps the per-round cost
on the workers:

* **construct once** — each worker receives its shards (model, method,
  :class:`~repro.exec.shards.ShardSpec` list, initial block) a single time
  at startup and builds the shard engines there, so model tables and CSR
  structures are pickled once per worker, never per command;
* **shared-memory state** — the public ``(R, n)`` int64 batch lives in one
  ``multiprocessing.shared_memory`` block; after every ``advance`` command
  a worker publishes its shard rows with the engines'
  ``write_batch_into`` hook, and the parent reads checkpoints without any
  pickling of state;
* **barrier per command** — ``advance`` returns only when every worker has
  acknowledged, so ``config`` always observes a consistent round and
  ``run`` / ``iter_checkpoints`` / the whole convergence pipeline work on
  a :class:`ShardedEnsemble` unchanged via
  :class:`~repro.chains.ensemble.EnsembleTrajectoryMixin`.

Because the shard plan (partition + spawned ``SeedSequence`` streams) is
fixed before any worker exists, the trajectory is bit-identical for any
worker count, including ``workers=0``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_lib
import traceback
import warnings
from multiprocessing import shared_memory

import numpy as np

from repro.chains.ensemble import EnsembleTrajectoryMixin
from repro.errors import ExecError, FallbackEngineWarning, ModelError
from repro.exec.shards import ShardSpec, make_shard_plan, slice_initial

__all__ = ["ShardedEnsemble", "default_start_method"]

#: Seconds between liveness checks while waiting on worker replies.
_POLL_INTERVAL = 1.0
#: Seconds to wait for a worker to exit after a stop command.
_JOIN_TIMEOUT = 10.0


def default_start_method() -> str:
    """The multiprocessing start method the pool uses.

    ``REPRO_EXEC_START_METHOD`` overrides; otherwise ``fork`` where the
    platform offers it (cheap startup, no re-import) and ``spawn``
    elsewhere.  Workers rebuild all state from their pickled arguments
    either way, so the two methods produce identical trajectories.
    """
    override = os.environ.get("REPRO_EXEC_START_METHOD")
    if override:
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _shard_initial_blocks(shards, initial, per_replica):
    """Per-shard start blocks aligned with ``shards``.

    A per-replica ``(R, n)`` batch is sliced to each shard's rows (so a
    worker is only ever shipped its own shards' rows, not the full batch);
    a shared length-n start or ``None`` is repeated as-is.
    """
    if per_replica:
        return [initial[spec.start : spec.stop] for spec in shards]
    return [initial] * len(shards)


def _build_shard_engines(model, method, shards, initial_blocks, backend=None):
    """Construct one ensemble engine per shard, seeded by the shard's stream.

    Shared verbatim between in-process execution and the worker processes —
    the construction path *is* the determinism contract, so there must be
    exactly one of it.  ``backend`` is a registered backend *name* (names
    pickle; instances do not).  Fallback warnings are suppressed here: the
    facade has already warned once for the whole sharded run.
    """
    from repro.api import make_ensemble

    engines = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FallbackEngineWarning)
        for spec, block in zip(shards, initial_blocks):
            engines.append(
                (
                    spec,
                    make_ensemble(
                        model,
                        spec.size,
                        method=method,
                        seed=spec.seed,
                        initial=block,
                        backend=backend,
                    ),
                )
            )
    return engines


def _parent_tracker_pid() -> int | None:
    """PID of this (parent) process's resource tracker, if one is running."""
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._pid
    except Exception:  # pragma: no cover - stdlib internals moved
        return None


def _untrack(  # pragma: no cover - worker-side
    shm: shared_memory.SharedMemory, parent_tracker_pid: int | None
) -> None:
    """Unregister an *attached* segment from a worker-private resource tracker.

    On POSIX Pythons before 3.13 merely attaching registers the segment
    with the resource tracker.  When the worker shares the parent's
    tracker — fork inherits the whole tracker state, spawn passes the
    tracker fd in the preparation data — that registration is an
    idempotent set-add and the parent's ``unlink`` is the single
    deregistration; unregistering here too would make the shared
    tracker's cleanup raise.  Only a worker that genuinely started its
    *own* tracker (no inherited fd, so ``_pid`` is a fresh pid different
    from the parent's tracker) must unregister, lest its private tracker
    "clean up" the parent's still-live block at worker exit.
    """
    try:
        from multiprocessing import resource_tracker

        pid = resource_tracker._resource_tracker._pid
        if pid is None or pid == parent_tracker_pid:
            return  # shared with the parent; its unlink is the one deregistration
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _worker_main(  # pragma: no cover - runs in worker processes, invisible to coverage
    worker_id: int,
    model,
    method: str,
    shards: list[ShardSpec],
    initial_blocks,
    backend: str | None,
    shm_name: str,
    shape: tuple[int, int],
    parent_tracker_pid: int | None,
    commands,
    replies,
) -> None:
    """Worker loop: build shard engines once, then serve advance commands."""
    shm = None
    batch = None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
        _untrack(shm, parent_tracker_pid)
        batch = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
        engines = _build_shard_engines(
            model, method, shards, initial_blocks, backend=backend
        )
        for spec, engine in engines:
            engine.write_batch_into(batch[spec.start : spec.stop])
        replies.put((worker_id, "ready", None))
        while True:
            command = commands.get()
            if command is None or command[0] == "stop":
                return
            if command[0] != "advance":
                replies.put((worker_id, "error", f"unknown command {command!r}"))
                return
            steps = command[1]
            for spec, engine in engines:
                engine.advance(steps)
                engine.write_batch_into(batch[spec.start : spec.stop])
            replies.put((worker_id, "done", None))
    except BaseException:
        try:
            replies.put((worker_id, "error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        batch = None  # noqa: F841 — release the buffer view before closing the mmap
        if shm is not None:
            shm.close()


class ShardedEnsemble(EnsembleTrajectoryMixin):
    """An ``(R, n)`` replica ensemble executed shard-by-shard, optionally pooled.

    Implements the full ensemble protocol (``advance`` / ``run`` /
    ``config`` / ``iter_checkpoints`` / ``write_batch_into``), so the
    convergence pipeline (``tv_curve`` / ``mixing_time`` / agreement
    curves) consumes it exactly like a single-process engine.

    Parameters
    ----------
    model:
        A pairwise MRF or weighted local CSP (anything
        :func:`repro.api.make_ensemble` dispatches on).
    replicas:
        Total replica count R across all shards.
    method:
        ``"local-metropolis"``, ``"luby-glauber"`` or ``"glauber"``.
    seed:
        Int or :class:`numpy.random.SeedSequence` root of the shard
        streams (``None`` draws OS entropy).  Live Generators are rejected
        — see :func:`repro.exec.shards.as_seed_sequence`.
    initial:
        ``None``, a shared length-n start, or an ``(R, n)`` per-replica
        batch (shard ``s`` starts from its row slice).
    workers:
        ``0`` / ``None`` executes the shards serially in-process — the
        reference every pooled run is bit-identical to; ``k >= 1`` runs a
        persistent pool of ``min(k, num_shards)`` worker processes.
    shard_size:
        Replicas per shard (default: split into
        :data:`repro.exec.shards.DEFAULT_NUM_SHARDS` near-equal shards).
        Part of the determinism contract — two runs shard-compatible only
        if their partitions match.
    start_method:
        Multiprocessing start method (default :func:`default_start_method`).
    backend:
        Registered array-backend *name* for the shard engines
        (:mod:`repro.backend`); a name rather than an instance because it
        must pickle to the workers.  ``None`` resolves per-process via
        ``$REPRO_BACKEND``, then numpy.

    Use as a context manager (or call :meth:`close`) to release worker
    processes and the shared-memory block deterministically.
    """

    def __init__(
        self,
        model,
        replicas: int,
        method: str = "local-metropolis",
        seed: int | np.random.SeedSequence | None = None,
        initial=None,
        workers: int | None = None,
        shard_size: int | None = None,
        start_method: str | None = None,
        backend: str | None = None,
    ) -> None:
        self.model = model
        self.method = method
        self.backend = backend
        self.n = int(model.n)
        self.replicas = int(replicas)
        self.shards = make_shard_plan(replicas, seed=seed, shard_size=shard_size)
        initial_array, per_replica = slice_initial(initial, self.n, self.replicas)
        if workers is None:
            workers = 0
        if workers < 0:
            raise ModelError(f"workers must be >= 0, got {workers}")
        self.workers = min(int(workers), len(self.shards))
        self.steps_taken = 0
        self._closed = False
        self._engines = None
        self._pool = None
        initial_blocks = _shard_initial_blocks(self.shards, initial_array, per_replica)
        if self.workers == 0:
            self._engines = _build_shard_engines(
                model, method, self.shards, initial_blocks, backend=backend
            )
        else:
            self._pool = _ShardWorkerPool(
                model,
                method,
                self.shards,
                initial_blocks,
                self.replicas,
                self.n,
                self.workers,
                start_method or default_start_method(),
                backend=backend,
            )

    # ------------------------------------------------------------------
    # ensemble protocol
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards in the plan (independent of worker count)."""
        return len(self.shards)

    def advance(self, steps: int):
        """Advance every shard ``steps`` rounds (one barrier); return ``self``."""
        if int(steps) != steps or steps < 0:
            raise ModelError(f"advance needs steps >= 0, got {steps}")
        self._ensure_open()
        steps = int(steps)
        if self._pool is not None:
            self._pool.advance(steps)
        else:
            for _, engine in self._engines:
                engine.advance(steps)
        self.steps_taken += steps
        return self

    @property
    def config(self) -> np.ndarray:
        """The current ``(R, n)`` batch (an int64 copy — safe to mutate)."""
        self._ensure_open()
        if self._pool is not None:
            return self._pool.read_batch()
        out = np.empty((self.replicas, self.n), dtype=np.int64)
        for spec, engine in self._engines:
            engine.write_batch_into(out[spec.start : spec.stop])
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the shared-memory block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        self._engines = None

    def _ensure_open(self) -> None:
        # A pool force-closed by a worker failure counts as closed too, so
        # post-failure operations surface as ExecError rather than stray
        # ValueErrors from the torn-down queues.
        if self._closed or (self._pool is not None and self._pool.closed):
            raise ExecError("this ShardedEnsemble has been closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        mode = f"workers={self.workers}" if self.workers else "in-process"
        return (
            f"ShardedEnsemble(replicas={self.replicas}, n={self.n}, "
            f"method={self.method!r}, shards={self.num_shards}, {mode})"
        )


class _ShardWorkerPool:
    """Parent-side handle: processes, command queues, the shared state block."""

    def __init__(
        self,
        model,
        method: str,
        shards: list[ShardSpec],
        initial_blocks,
        replicas: int,
        n: int,
        workers: int,
        start_method: str,
        backend: str | None = None,
    ) -> None:
        self._ctx = mp.get_context(start_method)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(replicas * n * 8, 8)
        )
        self._batch = np.ndarray((replicas, n), dtype=np.int64, buffer=self._shm.buf)
        self._replies = self._ctx.Queue()
        self._workers: list[tuple[mp.Process, object]] = []
        self._closed = False
        tracker_pid = _parent_tracker_pid()
        try:
            for worker_id in range(workers):
                commands = self._ctx.Queue()
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        model,
                        method,
                        shards[worker_id::workers],
                        initial_blocks[worker_id::workers],
                        backend,
                        self._shm.name,
                        (replicas, n),
                        tracker_pid,
                        commands,
                        self._replies,
                    ),
                    daemon=True,
                )
                process.start()
                self._workers.append((process, commands))
            self._await_all("ready")
        except BaseException:
            self.close(force=True)
            raise

    def advance(self, steps: int) -> None:
        for _, commands in self._workers:
            commands.put(("advance", steps))
        self._await_all("done")

    def read_batch(self) -> np.ndarray:
        return np.array(self._batch)

    def _await_all(self, expected: str) -> None:
        """Barrier: collect one reply per worker, surfacing errors and deaths."""
        pending = set(range(len(self._workers)))
        deadline_misses = 0
        while pending:
            try:
                worker_id, status, payload = self._replies.get(timeout=_POLL_INTERVAL)
            except queue_lib.Empty:
                dead = [i for i in pending if not self._workers[i][0].is_alive()]
                if dead and deadline_misses:
                    exitcode = self._workers[dead[0]][0].exitcode
                    self._fail(
                        f"worker {dead[0]} died without replying "
                        f"(exit code {exitcode})"
                    )
                # One grace poll after seeing a dead worker: its last reply
                # may still be in flight through the queue feeder thread.
                deadline_misses += 1 if dead else 0
                continue
            if status == "error":
                self._fail(f"worker {worker_id} failed:\n{payload}")
            if status != expected:
                self._fail(
                    f"worker {worker_id} replied {status!r} while waiting "
                    f"for {expected!r}"
                )
            pending.discard(worker_id)

    def _fail(self, message: str) -> None:
        self.close(force=True)
        raise ExecError(message)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, force: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        for process, commands in self._workers:
            if force:
                process.terminate()
            else:
                try:
                    commands.put(("stop",))
                except Exception:
                    pass
        for process, _ in self._workers:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck-worker safety net
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        for _, commands in self._workers:
            commands.close()
        self._replies.close()
        # Release the ndarray view before closing the mmap, else BufferError.
        self._batch = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
