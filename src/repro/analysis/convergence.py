"""Convergence measurement for chain ensembles.

For state spaces small enough to hold the exact Gibbs distribution, the
cleanest empirical picture of ``tau(eps)`` runs an ensemble of independent
chains from a common worst-ish start and traces the TV distance between the
ensemble's empirical distribution and the exact target as rounds progress.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.analysis.empirical import empirical_distribution
from repro.errors import ConvergenceError
from repro.mrf.distribution import GibbsDistribution

__all__ = ["ensemble_tv_curve", "empirical_mixing_time"]


def ensemble_tv_curve(
    chain_factory: Callable[[np.random.Generator], object],
    target: GibbsDistribution,
    n_chains: int,
    checkpoints: list[int],
    seed: int | None = None,
) -> list[tuple[int, float]]:
    """TV between the ensemble empirical distribution and ``target`` over time.

    Parameters
    ----------
    chain_factory:
        ``chain_factory(rng)`` builds a fresh chain (anything exposing
        ``step()`` and ``config``); all chains should share the same initial
        configuration for a worst-case-style curve.
    target:
        The exact Gibbs distribution.
    n_chains:
        Ensemble size; the TV estimate's noise floor scales like
        ``sqrt(#states / n_chains)``.
    checkpoints:
        Sorted round counts at which to measure.

    Returns
    -------
    List of ``(round, tv)`` pairs.
    """
    if not checkpoints or sorted(checkpoints) != list(checkpoints):
        raise ConvergenceError("checkpoints must be a non-empty sorted list")
    root = np.random.SeedSequence(seed)
    chains = [chain_factory(np.random.default_rng(child)) for child in root.spawn(n_chains)]
    curve: list[tuple[int, float]] = []
    current_round = 0
    for checkpoint in checkpoints:
        for chain in chains:
            for _ in range(checkpoint - current_round):
                chain.step()
        current_round = checkpoint
        empirical = empirical_distribution(
            (tuple(int(s) for s in chain.config) for chain in chains),
            target.n,
            target.q,
        )
        curve.append((checkpoint, target.tv_distance(empirical)))
    return curve


def empirical_mixing_time(
    chain_factory: Callable[[np.random.Generator], object],
    target: GibbsDistribution,
    eps: float,
    n_chains: int = 2000,
    max_rounds: int = 10_000,
    stride: int = 1,
    seed: int | None = None,
) -> int:
    """First checkpoint (multiple of ``stride``) with ensemble TV <= eps.

    Note the estimator is biased upward by the sampling noise floor
    ``~sqrt(#states / n_chains)``; choose ``n_chains`` accordingly or prefer
    :func:`repro.chains.transition.exact_mixing_time` on tiny models.
    """
    root = np.random.SeedSequence(seed)
    chains = [chain_factory(np.random.default_rng(child)) for child in root.spawn(n_chains)]
    rounds = 0
    while rounds < max_rounds:
        for chain in chains:
            for _ in range(stride):
                chain.step()
        rounds += stride
        empirical = empirical_distribution(
            (tuple(int(s) for s in chain.config) for chain in chains),
            target.n,
            target.q,
        )
        if target.tv_distance(empirical) <= eps:
            return rounds
    raise ConvergenceError(
        f"ensemble TV did not reach {eps} within {max_rounds} rounds"
    )
