"""Tests for the extended generator family."""

import networkx as nx
import pytest

from repro.errors import ModelError
from repro.graphs import (
    binary_tree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    hypercube_graph,
    max_degree,
    random_bipartite_regular_graph,
)


class TestHypercube:
    def test_structure(self):
        g = hypercube_graph(4)
        assert g.number_of_nodes() == 16
        assert all(degree == 4 for _, degree in g.degree())
        assert nx.diameter(g) == 4

    def test_labels_are_bitstrings(self):
        g = hypercube_graph(3)
        assert set(g.nodes()) == set(range(8))
        # Neighbours differ in exactly one bit.
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1

    def test_validation(self):
        with pytest.raises(ModelError):
            hypercube_graph(0)


class TestBinaryTree:
    def test_heap_structure(self):
        g = binary_tree_graph(3)
        assert g.number_of_nodes() == 15
        assert nx.is_tree(g)
        assert sorted(g.neighbors(0)) == [1, 2]
        assert sorted(g.neighbors(1)) == [0, 3, 4]

    def test_height_zero(self):
        g = binary_tree_graph(0)
        assert g.number_of_nodes() == 1

    def test_validation(self):
        with pytest.raises(ModelError):
            binary_tree_graph(-1)


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar_graph(4, 2)
        assert g.number_of_nodes() == 4 + 8
        assert nx.is_tree(g)
        # Interior spine vertices: 2 spine neighbours + 2 legs.
        assert g.degree(1) == 4
        # Leaf legs have degree 1.
        assert g.degree(4) == 1

    def test_no_legs_is_path(self):
        g = caterpillar_graph(5, 0)
        assert nx.is_isomorphic(g, nx.path_graph(5))

    def test_validation(self):
        with pytest.raises(ModelError):
            caterpillar_graph(0, 1)
        with pytest.raises(ModelError):
            caterpillar_graph(3, -1)


class TestCompleteBipartite:
    def test_structure(self):
        g = complete_bipartite_graph(3, 5)
        assert g.number_of_edges() == 15
        assert max_degree(g) == 5

    def test_validation(self):
        with pytest.raises(ModelError):
            complete_bipartite_graph(0, 3)


class TestRandomBipartiteRegular:
    def test_bipartite_and_bounded_degree(self):
        g = random_bipartite_regular_graph(4, 20, seed=0)
        assert nx.is_bipartite(g)
        assert max_degree(g) <= 4
        # Every edge crosses the two sides.
        for u, v in g.edges():
            assert (u < 20) != (v < 20)

    def test_reproducible(self):
        a = random_bipartite_regular_graph(3, 10, seed=7)
        b = random_bipartite_regular_graph(3, 10, seed=7)
        assert set(a.edges()) == set(b.edges())

    def test_validation(self):
        with pytest.raises(ModelError):
            random_bipartite_regular_graph(0, 5)
        with pytest.raises(ModelError):
            random_bipartite_regular_graph(3, 0)
