"""E13 — LOCAL-engine throughput: reference vs vectorized rounds/sec.

The reference engine (`engine="reference"`) executes every round as
per-vertex Python dict message passing — the executable *definition* of the
LOCAL model.  The vectorized engine (`engine="vectorized"`) runs the same
per-round Markov kernel as whole-graph array operations.  This experiment
measures rounds/sec of both engines for both paper protocols (LubyGlauber,
LocalMetropolis) on random 6-regular colouring instances at
n ∈ {1024, 4096, 16384}, and asserts the tentpole acceptance criterion:
the vectorized engine is ≥ 10x the reference engine's rounds/sec for
LubyGlauber at n = 4096.

Timings are end-to-end per engine invocation (private-input slicing and
table building included), so the speedup is what a round-complexity
experiment actually gains.  Set ``REPRO_BENCH_SMOKE=1`` for CI-smoke sizes;
the 10x assertion is only enforced at full size.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import report, write_bench_json
from repro.distributed import (
    run_local_metropolis_protocol,
    run_luby_glauber_protocol,
)
from repro.graphs import random_regular_graph
from repro.mrf import proper_coloring_mrf

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Best-of-k timing under smoke: the tiny CI sizes finish in milliseconds,
#: where scheduler noise alone can fake a >30% "regression" at the gate.
#: Full-size runs are long enough to be stable single-shot.
REPEATS = 3 if SMOKE else 1

DEGREE = 6
Q = 21  # > (2 + sqrt 2) * Delta: inside Theorem 1.2's regime
SIZES = (128, 256, 512) if SMOKE else (1024, 4096, 16384)
#: The acceptance-criterion size (closest smoke size stands in under SMOKE).
TARGET_N = 256 if SMOKE else 4096
PROTOCOLS = (
    ("luby-glauber", run_luby_glauber_protocol),
    ("local-metropolis", run_local_metropolis_protocol),
)


def _rounds_per_sec(runner, mrf, rounds: int, engine: str) -> float:
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        config, stats = runner(mrf, rounds=rounds, seed=20170625, engine=engine)
        elapsed = time.perf_counter() - start
        assert stats.rounds == rounds
        assert mrf.is_feasible(config)
        best = max(best, rounds / elapsed)
    return best


def engine_throughput_series() -> tuple[list[str], dict[str, float]]:
    lines = [
        f"random {DEGREE}-regular graphs, q={Q} colourings; rounds/sec per engine",
        f"{'protocol':>18} {'n':>7} {'reference':>11} {'vectorized':>11} {'speedup':>8}",
    ]
    metrics: dict[str, float] = {}
    for n in SIZES:
        graph = random_regular_graph(DEGREE, n, seed=20170625)
        mrf = proper_coloring_mrf(graph, Q)
        # Budgets sized so each timing takes O(seconds): the reference
        # engine pays ~2|E| dict messages per round, the vectorized engine
        # a fixed number of array passes.
        reference_rounds = 4 if SMOKE else max(3, 300_000 // (n * DEGREE))
        vectorized_rounds = 20 if SMOKE else 200
        for name, runner in PROTOCOLS:
            reference_rps = _rounds_per_sec(runner, mrf, reference_rounds, "reference")
            vectorized_rps = _rounds_per_sec(runner, mrf, vectorized_rounds, "vectorized")
            speedup = vectorized_rps / reference_rps
            key = name.replace("-", "_")
            metrics[f"{key}_reference_rounds_per_sec_n{n}"] = reference_rps
            metrics[f"{key}_vectorized_rounds_per_sec_n{n}"] = vectorized_rps
            metrics[f"{key}_speedup_n{n}"] = speedup
            lines.append(
                f"{name:>18} {n:>7} {reference_rps:>11.3g} "
                f"{vectorized_rps:>11.3g} {speedup:>7.1f}x"
            )
    return lines, metrics


def test_local_engine_throughput():
    lines, metrics = engine_throughput_series()
    target = metrics[f"luby_glauber_speedup_n{TARGET_N}"]
    write_bench_json("E13", metrics, smoke=SMOKE)
    report(
        "E13",
        "LOCAL-engine throughput (reference vs vectorized)",
        lines
        + [
            "",
            "claim: the vectorized LOCAL engine runs the same per-round",
            "Markov kernel as the per-vertex reference runtime at >= 10x",
            "the rounds/sec, making the paper's round-complexity",
            "experiments practical at 10^4+ vertices.",
            f"measured: {target:.1f}x for LubyGlauber at n={TARGET_N}.",
        ],
    )
    if not SMOKE:
        assert target >= 10.0, (
            f"vectorized LubyGlauber speedup {target:.1f}x at n={TARGET_N} "
            "is below the 10x acceptance criterion"
        )
