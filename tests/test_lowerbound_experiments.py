"""Tests for the batched lower-bound experiments and phase kernels.

Two layers:

* the vectorized phase kernels in :mod:`repro.lowerbound.phases` must
  agree element-for-element with the scalar originals they replace, and
* the batched gadget/lift experiments in
  :mod:`repro.lowerbound.experiments` must be distributionally
  equivalent to the sequential per-chain oracle while reproducing the
  paper's qualitative Section 5 physics (phase persistence, max-cut
  metastability, the ``2^(1-m)`` protocol hit rate).
"""

import numpy as np
import pytest
from statutils import assert_same_distribution

from repro.errors import ModelError
from repro.lowerbound import (
    batch_cut_sizes,
    batch_is_max_cut,
    batch_phase_of_configurations,
    batch_phase_vectors,
    build_cycle_lift,
    phase_of_configuration,
    phase_vector,
    protocol_phase_hit_rate,
    random_bipartite_gadget,
    sample_gadget_phases,
    sample_lift_phases,
)
from repro.lowerbound.phases import cut_size, is_max_cut_phase

GADGET = random_bipartite_gadget(6, 2, 5, rng=11)
LIFT = build_cycle_lift(4, 6, 1, 5, rng=12)


class TestBatchKernelParity:
    def test_batch_phases_match_scalar(self):
        rng = np.random.default_rng(0)
        configs = rng.integers(0, 2, size=(40, GADGET.n_vertices))
        batched = batch_phase_of_configurations(
            configs, GADGET.plus_side, GADGET.minus_side
        )
        scalar = [
            phase_of_configuration(row, GADGET.plus_side, GADGET.minus_side)
            for row in configs
        ]
        assert batched.tolist() == scalar

    def test_batch_phase_vectors_match_scalar(self):
        rng = np.random.default_rng(1)
        configs = rng.integers(0, 2, size=(40, LIFT.n_vertices))
        batched = batch_phase_vectors(configs, LIFT)
        scalar = [phase_vector(row, LIFT) for row in configs]
        assert batched.tolist() == scalar

    def test_batch_cut_kernels_match_scalar(self):
        rng = np.random.default_rng(2)
        phases = rng.choice([-1, 0, 1], size=(60, LIFT.m))
        assert batch_cut_sizes(phases).tolist() == [cut_size(p) for p in phases]
        assert batch_is_max_cut(phases).tolist() == [
            is_max_cut_phase(p) for p in phases
        ]

    def test_batch_kernels_validate_shapes(self):
        with pytest.raises(ModelError):
            batch_phase_of_configurations(
                np.zeros(GADGET.n_vertices), GADGET.plus_side, GADGET.minus_side
            )
        with pytest.raises(ModelError):
            batch_phase_vectors(np.zeros((3, LIFT.n_vertices + 1)), LIFT)


class TestGadgetExperiment:
    def test_shapes_and_phase_persistence(self):
        sample = sample_gadget_phases(GADGET, 4.0, 64, 30, seed=5)
        replicas, n = sample.configs.shape
        assert (replicas, n) == (64, GADGET.n_vertices)
        assert sample.phases.shape == (64,)
        assert sample.plus_density.shape == (64,)
        # Non-uniqueness regime: the seeded phase persists and the
        # occupied side stays dense while the other side stays sparse.
        assert sample.phase_persistence > 0.9
        assert sample.plus_density.mean() > sample.minus_density.mean() + 0.3

    def test_start_phase_minus_mirrors(self):
        sample = sample_gadget_phases(GADGET, 4.0, 64, 30, seed=6, start_phase=-1)
        assert float((sample.phases < 0).mean()) > 0.9
        assert sample.minus_density.mean() > sample.plus_density.mean() + 0.3

    def test_ensemble_matches_sequential_distribution(self):
        # The batched engine and the per-chain oracle must sample the same
        # law at equal round budgets (both from the same phase initial).
        batched = sample_gadget_phases(GADGET, 1.5, 1200, 20, seed=7)
        sequential = sample_gadget_phases(
            GADGET, 1.5, 300, 20, seed=8, engine="sequential"
        )
        assert_same_distribution(batched.configs, sequential.configs, 2)

    def test_validation(self):
        with pytest.raises(ModelError):
            sample_gadget_phases(GADGET, 2.0, 8, -1)
        with pytest.raises(ModelError):
            sample_gadget_phases(GADGET, 2.0, 8, 4, engine="abacus")


class TestLiftExperiment:
    def test_alternating_start_stays_on_max_cut(self):
        sample = sample_lift_phases(LIFT, 3.5, 48, 20, seed=9)
        assert sample.configs.shape == (48, LIFT.n_vertices)
        assert sample.phase_vectors.shape == (48, LIFT.m)
        assert sample.cut_sizes.shape == (48,)
        assert sample.max_cut_fraction > 0.9

    def test_constant_start_stays_off_max_cut(self):
        sample = sample_lift_phases(
            LIFT, 3.5, 48, 20, seed=10, start_pattern=[1] * LIFT.m
        )
        assert sample.max_cut_fraction < 0.1

    def test_ensemble_matches_sequential_phase_law(self):
        batched = sample_lift_phases(LIFT, 1.2, 900, 12, seed=11)
        sequential = sample_lift_phases(
            LIFT, 1.2, 150, 12, seed=12, engine="sequential"
        )
        # Compare the reduced per-copy phases (mapped to {0,1,2} states).
        assert_same_distribution(
            batched.phase_vectors + 1, sequential.phase_vectors + 1, 3
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            sample_lift_phases(LIFT, 2.0, 8, 4, start_pattern=[1])
        with pytest.raises(ModelError):
            sample_lift_phases(LIFT, 2.0, 8, -1)


class TestProtocolHitRate:
    def test_matches_two_to_one_minus_m(self):
        for m in (4, 6):
            rate = protocol_phase_hit_rate(m, 40_000, rng=13)
            assert rate == pytest.approx(2.0 ** (1 - m), abs=0.02)

    def test_seeded_reproducibility(self):
        assert protocol_phase_hit_rate(6, 5000, rng=14) == protocol_phase_hit_rate(
            6, 5000, rng=14
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            protocol_phase_hit_rate(3, 100)
        with pytest.raises(ModelError):
            protocol_phase_hit_rate(0, 100)
        with pytest.raises(ModelError):
            protocol_phase_hit_rate(4, 0)
