"""Empirical distributions built from chain samples.

Two families of estimators live here:

* the original per-sample estimators (``empirical_distribution``,
  ``marginal_from_samples``, ``pair_counts``) that iterate over Python
  sequences of configurations, and
* their *ensemble-native* counterparts (``batch_*``) that consume the
  ``(R, n)`` batches produced by :mod:`repro.chains.ensemble` and
  :func:`repro.api.sample_many` with whole-array numpy operations — no
  Python-level per-replica loop, so estimating over thousands of replicas
  costs microseconds, not milliseconds.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ModelError
from repro.mrf.distribution import GibbsDistribution, config_index

__all__ = [
    "empirical_distribution",
    "marginal_from_samples",
    "pair_counts",
    "batch_empirical_distribution",
    "batch_marginals",
    "batch_tv_to_exact",
    "batch_max_marginal_error",
    "batch_agreement",
]


def empirical_distribution(
    samples: Iterable[Sequence[int]], n: int, q: int
) -> GibbsDistribution:
    """Build the empirical distribution over ``[q]^n`` from samples.

    Only sensible when ``q**n`` is small enough to materialise; intended for
    the exact-versus-empirical TV convergence experiments.
    """
    probs = np.zeros(q**n)
    count = 0
    for sample in samples:
        probs[config_index(sample, q)] += 1.0
        count += 1
    if count == 0:
        raise ModelError("empirical_distribution needs at least one sample")
    return GibbsDistribution(n, q, probs)


def marginal_from_samples(
    samples: Iterable[Sequence[int]], v: int, q: int
) -> np.ndarray:
    """Return the empirical marginal of vertex ``v`` as a length-q vector."""
    counts = np.zeros(q)
    total = 0
    for sample in samples:
        counts[int(sample[v])] += 1.0
        total += 1
    if total == 0:
        raise ModelError("marginal_from_samples needs at least one sample")
    return counts / total


def pair_counts(
    samples: Iterable[Sequence[int]], u: int, v: int, q: int
) -> np.ndarray:
    """Return the empirical joint counts of ``(sigma_u, sigma_v)`` as a (q, q) matrix."""
    counts = np.zeros((q, q))
    for sample in samples:
        counts[int(sample[u]), int(sample[v])] += 1.0
    return counts


# ----------------------------------------------------------------------
# ensemble-native estimators over (R, n) batches
# ----------------------------------------------------------------------
def _check_batch(batch: np.ndarray, q: int) -> np.ndarray:
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ModelError(f"batch must be a 2-D (R, n) array, got shape {batch.shape}")
    if batch.shape[0] == 0:
        raise ModelError("batch estimators need at least one replica")
    if np.any(batch < 0) or np.any(batch >= q):
        raise ModelError(f"batch spins must lie in 0..{q - 1}")
    return batch.astype(np.int64, copy=False)


def batch_empirical_distribution(batch: np.ndarray, q: int) -> GibbsDistribution:
    """Build the empirical distribution over ``[q]^n`` from an ``(R, n)`` batch.

    Vectorised counterpart of :func:`empirical_distribution`: one
    matrix-vector product ranks all replicas, one bincount tallies them.
    Only sensible when ``q**n`` is small enough to materialise.
    """
    batch = _check_batch(batch, q)
    n = batch.shape[1]
    powers = q ** np.arange(n - 1, -1, -1, dtype=np.int64)
    indices = batch @ powers
    return GibbsDistribution(n, q, np.bincount(indices, minlength=q**n).astype(float))


def batch_marginals(batch: np.ndarray, q: int) -> np.ndarray:
    """Return all per-vertex empirical marginals of a batch as an ``(n, q)`` array.

    ``result[v]`` is the length-q marginal of vertex ``v`` across replicas
    (each row sums to 1); computed with a single flat bincount.
    """
    batch = _check_batch(batch, q)
    replicas, n = batch.shape
    offsets = np.arange(n, dtype=np.int64) * q
    counts = np.bincount((batch + offsets).ravel(), minlength=n * q)
    return counts.reshape(n, q) / replicas


def batch_tv_to_exact(batch: np.ndarray, exact: GibbsDistribution) -> float:
    """Total-variation distance between a batch's empirical distribution and
    an exact one (paper Section 2.3) — the workhorse of the E2-style
    convergence experiments, now one call per recorded round."""
    batch = _check_batch(batch, exact.q)
    if batch.shape[1] != exact.n:
        raise ModelError(
            f"batch has {batch.shape[1]} vertices but the distribution has {exact.n}"
        )
    return exact.tv_distance(batch_empirical_distribution(batch, exact.q))


def batch_max_marginal_error(batch: np.ndarray, exact: GibbsDistribution) -> float:
    """Worst per-vertex marginal TV error of a batch against ``exact``.

    Unlike :func:`batch_tv_to_exact` this stays meaningful when ``q**n`` is
    too large to enumerate a joint empirical distribution reliably.
    """
    batch = _check_batch(batch, exact.q)
    if batch.shape[1] != exact.n:
        raise ModelError(
            f"batch has {batch.shape[1]} vertices but the distribution has {exact.n}"
        )
    empirical = batch_marginals(batch, exact.q)
    exact_marginals = np.stack([exact.marginal(v) for v in range(exact.n)])
    return float(0.5 * np.abs(empirical - exact_marginals).sum(axis=1).max())


def batch_agreement(batch_x: np.ndarray, batch_y: np.ndarray) -> np.ndarray:
    """Per-vertex agreement frequencies between two aligned batches.

    ``result[v]`` is the fraction of replicas whose two copies assign the
    same spin to vertex ``v``.  Recording ``batch_agreement(...).mean()``
    round-by-round for two coupled ensembles gives the paper's coalescence
    / agreement curves without any per-replica loop.
    """
    x = np.asarray(batch_x)
    y = np.asarray(batch_y)
    if x.ndim != 2 or x.shape != y.shape:
        raise ModelError(
            f"batch_agreement needs two equal-shape (R, n) batches, "
            f"got {x.shape} and {y.shape}"
        )
    if x.shape[0] == 0:
        raise ModelError("batch estimators need at least one replica")
    return (x == y).mean(axis=0)
