"""Algorithms 1 and 2 as LOCAL-model message-passing protocols.

Private input of node ``v`` (paper Algorithms 1-2): the activity matrices
``{A_uv}_{u in Gamma(v)}`` and the vertex activity ``b_v``.  Nothing else
about the model is globally shared.

**LubyGlauberProtocol** — one iteration per round.  Each round node ``v``
draws its rank ``beta_v`` and sends ``(beta_v, X_v)`` to all neighbours; on
delivery it updates ``X_v`` by a heat-bath draw iff its rank beats every
neighbour's.  The spins carried by the messages are the pre-round values, so
all marginals are evaluated against a consistent snapshot, exactly as in
Algorithm 1.

**LocalMetropolisProtocol** — one iteration per round.  Each round node ``v``
draws its proposal ``sigma_v`` (with probability proportional to ``b_v``)
and a coin share ``r_v``; it sends ``(sigma_v, X_v, r_v)``.  On delivery,
the edge coin of ``uv`` is the shared uniform value ``(r_u + r_v) mod 1`` —
both endpoints compute the identical value, realising the paper's
requirement that "the two endpoints access the same random coin".  Node
``v`` accepts its proposal iff every incident edge check passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.chains.glauber import sample_spin
from repro.errors import ProtocolError
from repro.local.network import Network
from repro.local.protocol import NodeContext, Protocol
from repro.local.runtime import RunStats, run_protocol
from repro.mrf.model import MRF

__all__ = [
    "SamplingInput",
    "LubyGlauberProtocol",
    "LocalMetropolisProtocol",
    "run_luby_glauber_protocol",
    "run_local_metropolis_protocol",
    "make_private_inputs",
]


@dataclass
class SamplingInput:
    """Private input of one node: its local slice of the MRF.

    Attributes
    ----------
    q:
        Domain size (shared by convention, as in the paper).
    vertex_activity:
        ``b_v`` as a length-q vector.
    edge_activities:
        ``{u: Ã_uv}`` for each neighbour ``u`` — already max-normalised, as
        only ratios/normalised values are ever used by the algorithms.
    initial_spin:
        The arbitrary initial value ``X_v`` (Algorithms 1-2, line 1).
    """

    q: int
    vertex_activity: np.ndarray
    edge_activities: dict[int, np.ndarray]
    initial_spin: int


def make_private_inputs(mrf: MRF, initial: np.ndarray) -> list[SamplingInput]:
    """Slice an MRF into per-node private inputs."""
    inputs = []
    for v in range(mrf.n):
        inputs.append(
            SamplingInput(
                q=mrf.q,
                vertex_activity=mrf.vertex_activity[v].copy(),
                edge_activities={
                    u: mrf.normalized_edge_activity(u, v) for u in mrf.neighbors(v)
                },
                initial_spin=int(initial[v]),
            )
        )
    return inputs


class LubyGlauberProtocol(Protocol):
    """Algorithm 1 as a LOCAL protocol; one iteration per communication round."""

    def initialize(self, ctx: NodeContext) -> None:
        inp: SamplingInput = ctx.private_input
        if inp is None:
            raise ProtocolError("LubyGlauberProtocol needs SamplingInput private inputs")
        ctx.state["spin"] = inp.initial_spin
        ctx.state["rank"] = None

    def compose(self, ctx: NodeContext, round_index: int) -> dict[int, Any]:
        rank = float(ctx.rng.random())
        ctx.state["rank"] = rank
        message = (rank, ctx.state["spin"])
        return {u: message for u in ctx.neighbors}

    def deliver(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> None:
        inp: SamplingInput = ctx.private_input
        my_rank = ctx.state["rank"]
        neighbor_spins = {u: inbox[u][1] for u in ctx.neighbors}
        if ctx.neighbors and any(inbox[u][0] >= my_rank for u in ctx.neighbors):
            return  # not a local maximum: stay put this round
        # Heat-bath update from the conditional marginal (paper eq. (2)).
        weights = inp.vertex_activity.copy()
        for u in ctx.neighbors:
            weights = weights * inp.edge_activities[u][:, neighbor_spins[u]]
        total = weights.sum()
        if total <= 0.0:
            raise ProtocolError(
                f"node {ctx.node}: conditional marginal undefined "
                "(Glauber well-definedness assumption violated)"
            )
        ctx.state["spin"] = sample_spin(weights / total, ctx.rng)

    def finalize(self, ctx: NodeContext) -> int:
        return int(ctx.state["spin"])


class LocalMetropolisProtocol(Protocol):
    """Algorithm 2 as a LOCAL protocol; one iteration per communication round."""

    def initialize(self, ctx: NodeContext) -> None:
        inp: SamplingInput = ctx.private_input
        if inp is None:
            raise ProtocolError("LocalMetropolisProtocol needs SamplingInput private inputs")
        ctx.state["spin"] = inp.initial_spin
        total = inp.vertex_activity.sum()
        ctx.state["proposal_cdf"] = np.cumsum(inp.vertex_activity / total)

    def compose(self, ctx: NodeContext, round_index: int) -> dict[int, Any]:
        cdf = ctx.state["proposal_cdf"]
        draw = float(ctx.rng.random())
        proposal = int(np.searchsorted(cdf, draw, side="right"))
        proposal = min(proposal, len(cdf) - 1)
        coin_share = float(ctx.rng.random())
        ctx.state["proposal"] = proposal
        ctx.state["coin_share"] = coin_share
        message = (proposal, ctx.state["spin"], coin_share)
        return {u: message for u in ctx.neighbors}

    def deliver(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> None:
        inp: SamplingInput = ctx.private_input
        my_spin = ctx.state["spin"]
        my_proposal = ctx.state["proposal"]
        my_share = ctx.state["coin_share"]
        for u in ctx.neighbors:
            their_proposal, their_spin, their_share = inbox[u]
            table = inp.edge_activities[u]
            # Both endpoints evaluate the same product of three normalised
            # activities (paper Algorithm 2, line 6).
            probability = (
                table[their_proposal, my_proposal]
                * table[their_spin, my_proposal]
                * table[their_proposal, my_spin]
            )
            # Shared edge coin: (r_u + r_v) mod 1 is uniform and identical
            # at both endpoints.
            coin = (my_share + their_share) % 1.0
            if coin >= probability:
                return  # an incident edge failed its check: keep X_v
        ctx.state["spin"] = my_proposal

    def finalize(self, ctx: NodeContext) -> int:
        return int(ctx.state["spin"])


def run_luby_glauber_protocol(
    mrf: MRF,
    rounds: int,
    seed: int | np.random.SeedSequence | None = None,
    initial: np.ndarray | None = None,
) -> tuple[np.ndarray, RunStats]:
    """Run Algorithm 1 on the LOCAL runtime; return (configuration, stats)."""
    network = Network(mrf.graph)
    if initial is None:
        from repro.chains.base import greedy_feasible_config

        initial = greedy_feasible_config(mrf)
    outputs, stats = run_protocol(
        LubyGlauberProtocol(),
        network,
        rounds,
        seed=seed,
        private_inputs=make_private_inputs(mrf, initial),
    )
    return np.asarray(outputs, dtype=np.int64), stats


def run_local_metropolis_protocol(
    mrf: MRF,
    rounds: int,
    seed: int | np.random.SeedSequence | None = None,
    initial: np.ndarray | None = None,
) -> tuple[np.ndarray, RunStats]:
    """Run Algorithm 2 on the LOCAL runtime; return (configuration, stats)."""
    network = Network(mrf.graph)
    if initial is None:
        from repro.chains.base import greedy_feasible_config

        initial = greedy_feasible_config(mrf)
    outputs, stats = run_protocol(
        LocalMetropolisProtocol(),
        network,
        rounds,
        seed=seed,
        private_inputs=make_private_inputs(mrf, initial),
    )
    return np.asarray(outputs, dtype=np.int64), stats
