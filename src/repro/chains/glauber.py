"""Single-site heat-bath Glauber dynamics — the sequential baseline.

Paper Section 3: starting from an arbitrary ``X in [q]^V``, each step

* samples a vertex ``v`` uniformly at random, and
* resamples ``X_v`` from the conditional marginal ``mu_v(. | X_Gamma(v))``
  of equation (2).

Under Dobrushin's condition the mixing rate is ``O(n/(1-alpha) log(n/eps))``
— the ``Theta(n / Delta)`` sequential slowdown that LubyGlauber removes.
"""

from __future__ import annotations

import numpy as np

from repro.chains.base import Chain
from repro.mrf.marginals import conditional_marginal

__all__ = ["GlauberDynamics"]


class GlauberDynamics(Chain):
    """The classic single-site heat-bath chain."""

    def step(self) -> None:
        """Resample one uniformly random vertex from its conditional marginal."""
        v = int(self.rng.integers(self.mrf.n))
        distribution = conditional_marginal(self.mrf, self.config, v)
        self.config[v] = sample_spin(distribution, self.rng)
        self.steps_taken += 1

    def sweep(self) -> None:
        """Perform ``n`` single-site steps (one expected full scan)."""
        for _ in range(self.mrf.n):
            self.step()


def sample_spin(distribution: np.ndarray, rng: np.random.Generator) -> int:
    """Draw one spin from a probability vector via inverse CDF.

    Equivalent to ``rng.choice(q, p=distribution)`` but considerably faster,
    which matters because chain ensembles call this millions of times.
    """
    u = rng.random()
    cumulative = 0.0
    last = len(distribution) - 1
    for spin, mass in enumerate(distribution):
        cumulative += mass
        if u < cumulative:
            return spin
    return last
