"""Coupling from the past (CFTP): *exact* Gibbs sampling.

The reproduction needs trustworthy ground-truth samples on models too large
for ``q**n`` enumeration (e.g. to validate the distributed chains' outputs
on 100+-vertex graphs).  Propp–Wilson coupling-from-the-past provides them:
run a grand coupling of Glauber dynamics from time ``-T`` to 0 with fixed
randomness; if all initial states coalesce, the common value at time 0 is
an exact sample from the stationary distribution.

Two engines:

* :class:`MonotoneCFTP` — for *monotone* spin systems (attractive models
  such as the ferromagnetic Ising model, and the hardcore model on
  bipartite graphs via the standard order-reversal), tracking only the
  top and bottom trajectories of the partial order;
* :class:`SmallStateCFTP` — for arbitrary models with small ``q**n``,
  tracking every state explicitly (exponential, but exact and
  assumption-free; used to cross-validate the monotone engine).

Both reuse randomness across doubling horizons exactly as Propp-Wilson
requires — re-running a longer horizon *extends the past*, it never
resamples the already-used updates.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.errors import (
    ConvergenceError,
    InfeasibleStateError,
    ModelError,
    StateSpaceTooLargeError,
)
from repro.mrf.marginals import conditional_marginal
from repro.mrf.model import MRF

__all__ = ["MonotoneCFTP", "SmallStateCFTP", "is_monotone_model"]


def _inverse_cdf_spin(distribution: np.ndarray, uniform: float) -> int:
    """Smallest spin whose cumulative conditional mass exceeds ``uniform``.

    When floating-point rounding makes the CDF top out slightly below 1.0,
    a uniform draw near 1 falls past every spin; the fallback must be the
    largest spin with *positive* mass — returning the last spin
    unconditionally could emit a zero-probability spin (e.g. occupying a
    blocked vertex in a hardcore model), which would make the "exact"
    CFTP sampler produce infeasible configurations.
    """
    cumulative = 0.0
    for spin, mass in enumerate(distribution):
        cumulative += mass
        if uniform < cumulative:
            return spin
    for spin in range(len(distribution) - 1, -1, -1):
        if distribution[spin] > 0.0:
            return spin
    raise InfeasibleStateError(
        "inverse-CDF sampling needs a distribution with positive total mass"
    )


def _glauber_update(
    mrf: MRF, config: np.ndarray, vertex: int, uniform: float
) -> int:
    """Deterministic Glauber update: new spin of ``vertex`` from one uniform.

    Uses inverse-CDF sampling so that, for two-state monotone models, a
    *common* uniform draw yields a monotone update (larger neighbourhoods
    give stochastically larger marginals and the inverse CDF preserves it).
    """
    return _inverse_cdf_spin(conditional_marginal(mrf, config, vertex), uniform)


def is_monotone_model(mrf: MRF) -> bool:
    """Heuristically check the attractivity condition for two-state models.

    A two-state MRF is monotone (attractive) for the coordinatewise order
    iff every edge activity satisfies ``A(0,0) * A(1,1) >= A(0,1) * A(1,0)``
    — the FKG-type lattice condition.  The ferromagnetic Ising model
    (``A(i,i) = beta > 1``) qualifies; the hardcore model does **not** (it
    is anti-monotone) and must go through the bipartite order-reversal.
    """
    if mrf.q != 2:
        return False
    for u, v in mrf.edges:
        matrix = mrf.edge_activity(u, v)
        if matrix[0, 0] * matrix[1, 1] < matrix[0, 1] * matrix[1, 0] - 1e-15:
            return False
    return True


class MonotoneCFTP:
    """Propp-Wilson CFTP for monotone two-state models.

    Parameters
    ----------
    mrf:
        A two-state model satisfying :func:`is_monotone_model`, or any
        two-state model together with ``flip_vertices`` implementing an
        order-reversal (see below).
    flip_vertices:
        Optional set of vertices whose spin is interpreted *reversed* in
        the partial order.  For the hardcore model on a bipartite graph
        with parts ``(L, R)``, passing ``R`` makes the model monotone in
        the twisted order (the classical trick), enabling exact hardcore
        sampling.
    seed:
        Seed for the randomness of the past.
    """

    def __init__(
        self,
        mrf: MRF,
        flip_vertices: Sequence[int] | None = None,
        seed: int | None = None,
    ) -> None:
        if mrf.q != 2:
            raise ModelError("MonotoneCFTP supports two-state models only")
        self.mrf = mrf
        self.flip = np.zeros(mrf.n, dtype=bool)
        if flip_vertices is not None:
            self.flip[list(flip_vertices)] = True
        if not self._twisted_monotone():
            raise ModelError(
                "model is not monotone under the given order; for hardcore "
                "models pass one side of a bipartition as flip_vertices"
            )
        self._seed_sequence = np.random.SeedSequence(seed)

    def _twisted_monotone(self) -> bool:
        """Check the lattice condition in the (possibly) twisted order."""
        for u, v in self.mrf.edges:
            matrix = np.array(self.mrf.edge_activity(u, v))
            if self.flip[u] != self.flip[v]:
                matrix = matrix[:, ::-1]  # reverse v's spin order
            if matrix[0, 0] * matrix[1, 1] < matrix[0, 1] * matrix[1, 0] - 1e-15:
                return False
        return True

    # ------------------------------------------------------------------
    def _order_leq(self, low: np.ndarray, high: np.ndarray) -> bool:
        """Twisted coordinatewise order: spins at flipped vertices reverse."""
        a = np.where(self.flip, 1 - low, low)
        b = np.where(self.flip, 1 - high, high)
        return bool(np.all(a <= b))

    def _bottom_top(self) -> tuple[np.ndarray, np.ndarray]:
        bottom = np.where(self.flip, 1, 0).astype(np.int64)
        top = np.where(self.flip, 0, 1).astype(np.int64)
        return bottom, top

    def _updates_for_block(self, block_index: int, length: int):
        """Randomness for time block ``[-2^{k+1}, -2^k)`` — fixed per block."""
        rng = np.random.default_rng(self._seed_sequence.spawn(block_index + 1)[0])
        vertices = rng.integers(0, self.mrf.n, size=length)
        uniforms = rng.random(length)
        return vertices, uniforms

    def _twisted_update(self, config: np.ndarray, vertex: int, uniform: float) -> int:
        """Glauber update with the uniform draw twisted at flipped vertices.

        Using ``1 - u`` at flipped vertices makes the common-uniform grand
        coupling monotone in the twisted order.
        """
        u = 1.0 - uniform if self.flip[vertex] else uniform
        # Clamp away from 1.0 so inverse-CDF stays within range.
        u = min(u, np.nextafter(1.0, 0.0))
        return _glauber_update(self.mrf, config, vertex, u)

    def sample(self, max_doublings: int = 22) -> np.ndarray:
        """Return one exact Gibbs sample.

        Doubles the horizon ``T = n, 2n, 4n, ...`` until the top and bottom
        chains coalesce at time 0.  Raises :class:`ConvergenceError` after
        ``max_doublings`` doublings (torpid models — e.g. strongly
        ferromagnetic Ising — may legitimately hit this).
        """
        base = max(1, self.mrf.n)
        blocks: list[tuple[np.ndarray, np.ndarray]] = []
        for doubling in range(max_doublings):
            length = base * (2**doubling)
            if len(blocks) <= doubling:
                blocks.append(self._updates_for_block(doubling, length))
            bottom, top = self._bottom_top()
            # Evolve from -sum(lengths) to 0: oldest block first.
            for block in range(doubling, -1, -1):
                vertices, uniforms = blocks[block]
                for vertex, uniform in zip(vertices, uniforms):
                    bottom[vertex] = self._twisted_update(bottom, vertex, uniform)
                    top[vertex] = self._twisted_update(top, vertex, uniform)
                if not self._order_leq(bottom, top):
                    raise ConvergenceError(
                        "sandwich order violated: model is not monotone "
                        "under the configured order"
                    )
            if np.array_equal(bottom, top):
                return bottom
        raise ConvergenceError(
            f"no coalescence within {max_doublings} horizon doublings"
        )


class SmallStateCFTP:
    """Assumption-free CFTP tracking the full grand coupling.

    Evolves *every* configuration under common randomness; coalescence of
    all of them certifies an exact sample.  Cost ``q**n`` per step — only
    for cross-validation on tiny models.
    """

    def __init__(self, mrf: MRF, seed: int | None = None, max_states: int = 4096) -> None:
        if mrf.q**mrf.n > max_states:
            raise StateSpaceTooLargeError(
                f"SmallStateCFTP tracks {mrf.q}**{mrf.n} states"
            )
        self.mrf = mrf
        self._seed_sequence = np.random.SeedSequence(seed)
        self._states = [
            np.array(config, dtype=np.int64)
            for config in itertools.product(range(mrf.q), repeat=mrf.n)
            if mrf.is_feasible(config)
        ]
        if not self._states:
            raise ModelError("model has no feasible configuration")

    def _updates_for_block(self, block_index: int, length: int):
        rng = np.random.default_rng(self._seed_sequence.spawn(block_index + 1)[0])
        vertices = rng.integers(0, self.mrf.n, size=length)
        uniforms = rng.random(length)
        return vertices, uniforms

    def sample(self, max_doublings: int = 18) -> np.ndarray:
        """Return one exact Gibbs sample (over feasible starting states)."""
        base = max(1, self.mrf.n)
        blocks: list[tuple[np.ndarray, np.ndarray]] = []
        for doubling in range(max_doublings):
            length = base * (2**doubling)
            if len(blocks) <= doubling:
                blocks.append(self._updates_for_block(doubling, length))
            current = [state.copy() for state in self._states]
            for block in range(doubling, -1, -1):
                vertices, uniforms = blocks[block]
                for vertex, uniform in zip(vertices, uniforms):
                    for state in current:
                        state[vertex] = _glauber_update(
                            self.mrf, state, int(vertex), float(uniform)
                        )
            first = current[0]
            if all(np.array_equal(first, other) for other in current[1:]):
                return first
        raise ConvergenceError(
            f"no coalescence within {max_doublings} horizon doublings"
        )
