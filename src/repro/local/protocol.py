"""The protocol interface for the LOCAL-model simulator.

A :class:`Protocol` describes the behaviour of a *single node*; the runtime
instantiates one :class:`NodeContext` per vertex and drives all of them in
synchronised rounds:

1. ``initialize(ctx)`` is called once per node before round 1;
2. each round, ``compose(ctx)`` returns the messages the node sends to each
   neighbour (based only on its current local state);
3. after all messages of the round are exchanged, ``deliver(ctx, inbox)``
   updates the node's state from the received messages;
4. after the final round, ``finalize(ctx)`` produces the node's output.

Nodes may only communicate through the returned message dictionaries — the
runtime validates that every addressee is a neighbour, preserving the LOCAL
model's information-locality guarantee.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.errors import ProtocolError

__all__ = ["NodeContext", "Protocol"]


class NodeContext:
    """Everything a node can legally see during a LOCAL execution.

    Attributes
    ----------
    node:
        This node's identifier (``0..n-1``); in the LOCAL model nodes carry
        unique IDs.
    neighbors:
        Sorted tuple of neighbour identifiers.
    rng:
        This node's private randomness stream ``Psi_v``.
    private_input:
        The node's private input — for sampling problems, the activities
        ``{A_uv}_{u in Gamma(v)}`` and ``b_v`` (paper Algorithms 1 and 2).
    n_bound, delta_bound:
        The global upper bounds on ``n`` and ``Delta`` that paper Section 2.1
        explicitly allows.
    state:
        Free-form mutable per-node storage owned by the protocol.
    """

    def __init__(
        self,
        node: int,
        neighbors: tuple[int, ...],
        rng: np.random.Generator,
        private_input: Any,
        n_bound: int,
        delta_bound: int,
    ) -> None:
        self.node = node
        self.neighbors = neighbors
        self.rng = rng
        self.private_input = private_input
        self.n_bound = n_bound
        self.delta_bound = delta_bound
        self.state: dict[str, Any] = {}

    def check_addressees(self, outbox: dict[int, Any]) -> None:
        """Raise :class:`ProtocolError` if a message targets a non-neighbour."""
        for target in outbox:
            if target not in self.neighbors:
                raise ProtocolError(
                    f"node {self.node} attempted to message non-neighbour {target}"
                )


class Protocol(ABC):
    """Per-node behaviour of a synchronous LOCAL algorithm."""

    @abstractmethod
    def initialize(self, ctx: NodeContext) -> None:
        """Set up ``ctx.state`` before the first round."""

    @abstractmethod
    def compose(self, ctx: NodeContext, round_index: int) -> dict[int, Any]:
        """Return the outbox ``{neighbor: message}`` for this round."""

    @abstractmethod
    def deliver(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> None:
        """Consume the inbox ``{neighbor: message}`` and update local state."""

    @abstractmethod
    def finalize(self, ctx: NodeContext) -> Any:
        """Return this node's output after the final round."""

    def as_vectorized(self):
        """Return this protocol's array-form counterpart, or ``None``.

        Protocols with a :class:`repro.local.vectorized.VectorizedProtocol`
        implementation override this; the runtime's ``engine="vectorized"``
        dispatch calls it.  The default (``None``) means only the reference
        engine can execute the protocol.
        """
        return None
