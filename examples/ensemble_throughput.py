"""Replica ensembles: batched sampling and ensemble-native estimators.

Every statistical experiment in this reproduction averages over many
independent replicas.  This example shows the batched way to run them:

1. ``repro.sample_many`` draws an (R, n) batch of independent approximate
   samples in one call (R replicas advance simultaneously inside
   :mod:`repro.chains.ensemble`);
2. the ``batch_*`` estimators in :mod:`repro.analysis` consume such
   batches directly — here an empirical-TV-versus-round curve against the
   exact Gibbs distribution of a small model;
3. a throughput comparison against running the same replicas one
   sequential fast-path chain at a time (the full-size version, with the
   >= 10x acceptance gate, lives in ``benchmarks/bench_scale_throughput.py``).

Run:  PYTHONPATH=src python examples/ensemble_throughput.py
"""

from __future__ import annotations

import time

import repro
from repro.analysis import batch_agreement, batch_tv_to_exact
from repro.chains.ensemble import EnsembleLocalMetropolisColoring
from repro.chains.fastpaths import FastLocalMetropolisColoring
from repro.graphs import path_graph, random_regular_graph
from repro.mrf import exact_gibbs_distribution, proper_coloring_mrf


def batched_sampling_demo() -> None:
    mrf = proper_coloring_mrf(random_regular_graph(4, 200, seed=0), q=16)
    batch = repro.sample_many(mrf, r=64, method="local-metropolis", eps=0.05, seed=1)
    proper = sum(mrf.is_feasible(row) for row in batch)
    print(f"sample_many: batch shape {batch.shape}, {proper}/64 replicas proper")


def tv_curve_demo() -> None:
    """Empirical TV to the exact Gibbs distribution, round by round."""
    graph = path_graph(3)
    mrf = proper_coloring_mrf(graph, 4)
    gibbs = exact_gibbs_distribution(mrf)
    replicas = 2000
    ensemble = EnsembleLocalMetropolisColoring(graph, 4, replicas, seed=2)
    print(f"\nTV(empirical over {replicas} replicas, exact Gibbs) on path3/q4:")
    for round_number in (0, 1, 2, 4, 8, 16, 32):
        while ensemble.steps_taken < round_number:
            ensemble.step()
        tv = batch_tv_to_exact(ensemble.config, gibbs)
        print(f"  round {round_number:>2}: TV = {tv:.3f}")


def agreement_curve_demo() -> None:
    """Two ensembles from opposite starts; mean agreement per round."""
    graph = random_regular_graph(4, 100, seed=3)
    cold = EnsembleLocalMetropolisColoring(graph, 16, 256, seed=4)
    hot = EnsembleLocalMetropolisColoring(
        graph, 16, 256, initial=cold.config[:, ::-1].copy(), seed=5
    )
    print("\nmean per-vertex agreement between two independent ensembles:")
    for round_number in (1, 4, 16):
        while cold.steps_taken < round_number:
            cold.step()
            hot.step()
        agreement = batch_agreement(cold.config, hot.config).mean()
        print(f"  round {round_number:>2}: agreement = {agreement:.3f}")
    print("  (~1/q per vertex once both ensembles forget their starts)")


def throughput_demo() -> None:
    graph = random_regular_graph(10, 1000, seed=6)
    q, replicas, rounds = 40, 256, 16
    start = time.perf_counter()
    for seed in range(replicas):
        FastLocalMetropolisColoring(graph, q, seed=seed).run(rounds)
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    EnsembleLocalMetropolisColoring(graph, q, replicas, seed=7).run(rounds)
    batched = time.perf_counter() - start
    updates = replicas * graph.number_of_nodes() * rounds
    print(
        f"\nthroughput, {replicas} replicas x {rounds} rounds on n=1000:\n"
        f"  sequential: {sequential:6.2f} s ({updates / sequential:10.3g} updates/s)\n"
        f"  batched:    {batched:6.2f} s ({updates / batched:10.3g} updates/s)\n"
        f"  speedup:    {sequential / batched:.1f}x"
    )


def main() -> None:
    batched_sampling_demo()
    tv_curve_demo()
    agreement_curve_demo()
    throughput_demo()


if __name__ == "__main__":
    main()
