"""Content-addressed LRU cache for sampling results.

Keys are :meth:`repro.spec.JobSpec.cache_key` digests — a key equality
*guarantees* result equality (the key hashes everything that can reach a
sampled bit, and sampling is a pure function of it), so serving a cached
entry is indistinguishable from re-running the job.  Values are the
wire-encoded result payloads, ready to be written into a response with no
re-encoding.

Eviction is LRU over *two* bounds — a maximum entry count (``capacity``)
and a maximum total payload size (``max_bytes``, measured as the JSON
encoding of each value at insertion) — whichever is exceeded first.  A
single sample_many result can be orders of magnitude larger than a
mixing-time scalar, so an entry-count bound alone does not bound memory.

Entries carry an optional *model fingerprint* tag; :meth:`invalidate`
drops every entry tagged with a given fingerprint, which is how the
daemon retires results for a model that has been mutated away.

``hits``/``misses``/``evictions``/``invalidated`` counters feed the
daemon's ``/v1/stats`` route and the E17 benchmark.  The cache is
thread-safe (the daemon touches it from its event loop, benchmarks and
tests from wherever they like).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import NamedTuple

from repro.errors import ModelError

__all__ = ["ResultCache"]


class _Entry(NamedTuple):
    value: object
    nbytes: int
    fingerprint: str | None


class ResultCache:
    """A bounded LRU mapping of cache keys to wire-encoded results.

    ``capacity`` is the maximum number of entries; ``0`` disables caching
    entirely (every ``get`` misses, ``put`` is a no-op) — useful for
    measuring cold-path performance.  ``max_bytes`` additionally bounds
    the summed JSON-encoded size of the cached values (``None`` leaves
    bytes unbounded); an entry larger than ``max_bytes`` on its own is
    simply not retained.
    """

    def __init__(self, capacity: int = 128, max_bytes: int | None = None) -> None:
        if capacity < 0:
            raise ModelError(f"cache capacity must be >= 0, got {capacity}")
        if max_bytes is not None and max_bytes < 0:
            raise ModelError(f"cache max_bytes must be >= 0, got {max_bytes}")
        self.capacity = int(capacity)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    def get(self, key: str):
        """Return the cached value for ``key`` (refreshing it), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.value
            self.misses += 1
            return None

    def put(self, key: str, value, fingerprint: str | None = None) -> None:
        """Insert/refresh ``key``; evicts least-recently-used past either bound.

        ``fingerprint`` tags the entry with the model fingerprint its
        result belongs to, making it a target for :meth:`invalidate`.
        """
        if self.capacity == 0:
            return
        nbytes = len(json.dumps(value, separators=(",", ":")))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes, fingerprint)
            self._bytes += nbytes
            while self._entries and self._over_bounds():
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def _over_bounds(self) -> bool:
        if len(self._entries) > self.capacity:
            return True
        return self.max_bytes is not None and self._bytes > self.max_bytes

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry tagged with ``fingerprint``; returns the count.

        Invalidated entries are counted separately from capacity
        ``evictions`` — they were retired because their model mutated,
        not because the cache was full.
        """
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.fingerprint == fingerprint
            ]
            for key in stale:
                self._bytes -= self._entries.pop(key).nbytes
            self.invalidated += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the lifetime)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Counters and occupancy as one JSON-able dict."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "max_bytes": self.max_bytes,
                "size": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
