"""Dynamic graphs: mutate the model, resample only the influenced region.

:class:`repro.dynamic.DynamicEnsemble` wraps any replica-ensemble engine
with a mutation workflow.  Edges (MRF) or constraints (CSP) arrive and
leave through the models' copy-on-write API; each mutation marks a
bounded-radius influence ball around the touched vertices, and
``resample()`` re-mixes only that ball with the boundary clamped — an
O(log |S|)-shaped round budget instead of the O(log n) full budget.
This example walks:

1. **MRF updates** — remove / re-add an edge of a torus colouring and
   resample the ~18-vertex influence ball instead of all n vertices;
2. **determinism** — the whole mutate/resample trajectory is a pure
   function of the seed and the operation sequence, bit for bit;
3. **CSP updates** — toggle a constraint of a not-all-equal CSP, with
   feasibility preserved by the clamped region kernel;
4. **serving mutating models** — mutations re-derive
   ``model_fingerprint()``, so the serve-layer cache can never answer a
   mutated model with pre-mutation results; ``/v1/invalidate`` frees the
   stale entries.

The same workflow streams from the CLI:
``python -m repro dynamic --model coloring --graph torus --size 8 --q 8``.

Run:  PYTHONPATH=src python examples/dynamic_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicEnsemble, JobSpec
from repro.csp import not_all_equal_csp
from repro.graphs import torus_graph
from repro.mrf import proper_coloring_mrf
from repro.serve import ReproServer, ServeClient

SEED = 20170625


def mrf_update_demo() -> None:
    """Single-edge updates on a torus colouring, resampled incrementally."""
    mrf = proper_coloring_mrf(torus_graph(16, 16), q=8)
    dyn = DynamicEnsemble(mrf, replicas=128, method="luby-glauber", seed=SEED)
    dyn.mix()  # the full budget, paid once
    print(f"mixed: n={mrf.n}, engine={type(dyn.engine).__name__}")

    dyn.remove_edge(0, 1)
    region = dyn.pending_region
    print(f"remove_edge(0, 1): region {region.size} of {mrf.n} vertices")
    dyn.resample()

    dyn.add_edge(0, 1)  # homogeneous model: the shared activity is reused
    dyn.resample()
    restored = dyn.model_fingerprint() == mrf.model_fingerprint()
    feasible = sum(1 for row in dyn.config if dyn.model.is_feasible(row))
    print(f"re-added: fingerprint restored={restored}, "
          f"{feasible}/{len(dyn.config)} replicas proper")


def determinism_demo() -> None:
    """The trajectory is a pure function of seed + operation sequence."""
    def trajectory(seed):
        dyn = DynamicEnsemble(
            proper_coloring_mrf(torus_graph(6, 6), 8), 64,
            method="luby-glauber", seed=seed,
        )
        dyn.mix(8)
        dyn.remove_edge(0, 1)
        dyn.resample(16)
        return dyn.config

    replayed = np.array_equal(trajectory(SEED), trajectory(SEED))
    diverged = not np.array_equal(trajectory(SEED), trajectory(SEED + 1))
    print(f"bit-identical replay={replayed}, different seed diverges={diverged}")


def csp_update_demo() -> None:
    """Constraint toggles on a not-all-equal CSP."""
    scopes = [(v, (v + 1) % 12, (v + 2) % 12) for v in range(12)]
    csp = not_all_equal_csp(scopes, n=12, q=3)
    dyn = DynamicEnsemble(csp, replicas=96, method="luby-glauber", seed=SEED)
    dyn.mix()

    tail = dyn.model.constraints[-1]
    dyn.remove_constraint(len(dyn.model.constraints) - 1)
    dyn.resample()
    dyn.add_constraint(tail)
    dyn.resample()
    feasible = sum(1 for row in dyn.config if dyn.model.is_feasible(row))
    print(f"constraint toggled: {feasible}/{len(dyn.config)} replicas feasible, "
          f"mutations={dyn.mutations}")


def serve_mutation_demo() -> None:
    """A mutated model never hits pre-mutation cache entries."""
    mrf = proper_coloring_mrf(torus_graph(4, 4), q=8)
    with ReproServer(workers=1) as server:
        client = ServeClient(*server.address)
        spec = JobSpec.sample_many(mrf, 32, rounds=8, seed=SEED)
        client.submit(spec)
        hit = client.submit(spec)  # resubmits via the fingerprint fast path

        from repro import mutate
        mutated = mutate(mrf, "remove_edge", 0, 1)
        after = client.submit(JobSpec.sample_many(mutated, 32, rounds=8, seed=SEED))
        freed = client.invalidate(mrf)  # free the pre-mutation entries
        print(f"pre-mutation hit={hit['cached']}, mutated ran fresh="
              f"{not after['cached']}, invalidated {freed} stale entries")


if __name__ == "__main__":
    mrf_update_demo()
    determinism_demo()
    csp_update_demo()
    serve_mutation_demo()
