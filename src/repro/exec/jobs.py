"""Job-level scheduling: many heterogeneous sampling requests, one pool.

The third layer of the execution subsystem.  Where
:class:`~repro.exec.pool.ShardedEnsemble` parallelises *one* ensemble
across processes, :class:`JobRunner` parallelises *many independent
requests* — sample batches, TV curves, mixing-time estimates, over
different models and methods — onto a persistent pool of generic workers,
streaming progress back as it happens:

>>> from repro.exec import JobRunner, SamplingJob
>>> with JobRunner(workers=4) as runner:
...     a = runner.submit(SamplingJob.sample_many(coloring, 256, seed=1))
...     b = runner.submit(SamplingJob.tv_curve(csp, (1, 2, 4, 8), seed=2))
...     for event in runner.stream():      # checkpoints arrive live
...         print(event.label, event.kind, event.round, event.value)
...     results = runner.results

Determinism contract: a job is executed with exactly the same facade code
path (:mod:`repro.api`) and the job's own seed, so its result is
bit-identical to calling ``repro.api.sample_many`` / ``tv_curve`` /
``mixing_time`` directly with the same arguments — which worker ran it,
and what else ran beside it, never matters.  The test-suite asserts this
for every method.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from repro.errors import ConvergenceError, ExecError, ModelError, ReproError
from repro.obs import trace as _obs_trace
from repro.spec import JOB_KINDS, JobSpec

__all__ = ["JOB_KINDS", "SamplingJob", "JobUpdate", "JobRunner"]

#: Seconds between liveness checks while waiting for job events.
_POLL_INTERVAL = 1.0
#: Seconds to wait for a worker to exit after its stop sentinel.
_JOIN_TIMEOUT = 10.0

#: The job description is the unified request spec — one dataclass shared
#: by the facade, this scheduler, the CLI and the serving daemon.  The
#: historical name is kept as the scheduler-facing alias.
SamplingJob = JobSpec


class _JobCancelled(BaseException):
    """Worker-internal control-flow signal; never escapes the worker loop.

    Derives from BaseException so job code catching ``Exception`` (or
    :class:`~repro.errors.ReproError`) cannot swallow a cancellation.
    """


@dataclass(frozen=True)
class JobUpdate:
    """One streamed event: a pickup, a checkpoint, a final result, or an error.

    ``kind`` is ``"started"`` (a worker picked the job up; ``payload``
    carries the worker pid), ``"checkpoint"`` (``round``/``value`` carry a
    TV probe), ``"result"`` (``payload`` carries the job's return value)
    or ``"error"`` (``payload`` carries the message/traceback string).
    ``elapsed`` rides on result events: the worker-side wall-clock seconds
    the job took, which is otherwise unattributable from the parent.
    """

    job_id: int
    kind: str
    label: str
    round: int | None = None
    value: float | None = None
    payload: object = field(default=None, repr=False)
    elapsed: float | None = None


def _execute_job(job_id, job, emit) -> None:  # pragma: no cover - worker-side
    """Run one job through the :mod:`repro.api` facade, streaming progress.

    The tv_curve/mixing_time bodies advance the *same* ensemble the facade
    would build (same construction arguments, same RNG stream, same probe
    cadence), so the final result event is bit-identical to the direct
    call; the only addition is the per-checkpoint event stream.

    A sharded spec (``parallel is not None``) executes with ``parallel=0``
    — the in-process sharded reference.  Pool workers are daemonic and may
    not spawn grandchildren, and the determinism contract makes the worker
    count irrelevant to the bits: the result equals the same spec run on
    any number of processes.
    """
    from repro import api
    from repro.analysis.empirical import batch_tv_to_exact

    started = time.perf_counter()
    parallel = None if job.parallel is None else 0
    if job.kind == "sample_many":
        batch = api.sample_many(
            job.model,
            job.replicas,
            method=job.method,
            eps=job.eps if job.eps is not None else 0.05,
            rounds=job.rounds,
            seed=job.seed,
            initial=job.initial,
            parallel=parallel,
            shard_size=job.shard_size,
            backend=job.backend,
        )
        emit(
            JobUpdate(
                job_id,
                "result",
                job.label,
                payload=batch,
                elapsed=time.perf_counter() - started,
            )
        )
        return

    target = api._exact_distribution(job.model)
    ensemble = api.make_ensemble(
        job.model,
        job.replicas,
        method=job.method,
        seed=job.seed,
        initial=job.initial,
        parallel=parallel,
        shard_size=job.shard_size,
        backend=job.backend,
    )
    try:
        if job.kind == "tv_curve":
            curve: list[tuple[int, float]] = []
            for rounds, batch in ensemble.iter_checkpoints(list(job.checkpoints)):
                tv = batch_tv_to_exact(batch, target)
                curve.append((rounds, tv))
                emit(JobUpdate(job_id, "checkpoint", job.label, round=rounds, value=tv))
            emit(
                JobUpdate(
                    job_id,
                    "result",
                    job.label,
                    payload=curve,
                    elapsed=time.perf_counter() - started,
                )
            )
            return

        # mixing_time: the empirical_mixing_time loop with streamed TV probes.
        rounds = 0
        while rounds < job.max_rounds:
            step = min(job.stride, job.max_rounds - rounds)
            ensemble.advance(step)
            rounds += step
            tv = batch_tv_to_exact(ensemble.config, target)
            emit(JobUpdate(job_id, "checkpoint", job.label, round=rounds, value=tv))
            if tv <= job.eps:
                emit(
                    JobUpdate(
                        job_id,
                        "result",
                        job.label,
                        payload=rounds,
                        elapsed=time.perf_counter() - started,
                    )
                )
                return
        raise ConvergenceError(
            f"ensemble TV did not reach {job.eps} within {job.max_rounds} rounds"
        )
    finally:
        if parallel is not None:
            ensemble.close()


def _job_worker_main(tasks, events, control) -> None:  # pragma: no cover - worker-side
    """Worker loop: pull jobs off the shared queue until the stop sentinel.

    ``control`` is this worker's read end of the cancellation channel: the
    parent broadcasts cancelled job ids to every worker.  The set is
    checked when a job is pulled off the queue (a queued job cancels
    before any work happens) and at every event emission (a running
    streamed job cancels at its next checkpoint boundary).

    Task items are ``(job_id, job, trace)`` triples; ``trace`` is either
    ``None`` or an exported trace context (``repro.obs.trace``) carrying
    the submitter's trace-file path and span ids, so worker-side spans
    stitch into the same trace across the pipe boundary.
    """
    cancelled: set[int] = set()

    def drain_control() -> None:
        try:
            while control.poll():
                cancelled.add(control.recv())
        except (EOFError, OSError):
            pass

    while True:
        item = tasks.get()
        if item is None:
            return
        job_id, job, trace = item
        drain_control()
        if job_id in cancelled:
            events.put(
                JobUpdate(
                    job_id,
                    "error",
                    job.label,
                    payload="CancelledError: job cancelled before it started",
                )
            )
            continue

        def emit(event, job_id=job_id):
            drain_control()
            if job_id in cancelled:
                raise _JobCancelled()
            events.put(event)

        try:
            # Announce the pickup with this worker's pid so the parent can
            # attribute the job if this process dies mid-execution.
            events.put(JobUpdate(job_id, "started", job.label, payload=os.getpid()))
            if trace is not None and trace.get("file"):
                _obs_trace.ensure_tracing(trace["file"])
            with _obs_trace.span(
                "runner.job", parent=trace, label=job.label, kind=job.kind, job_id=job_id
            ):
                _execute_job(job_id, job, emit)
        except _JobCancelled:
            events.put(
                JobUpdate(
                    job_id,
                    "error",
                    job.label,
                    payload="CancelledError: job cancelled",
                )
            )
        except ReproError as error:
            events.put(
                JobUpdate(
                    job_id,
                    "error",
                    job.label,
                    payload=f"{type(error).__name__}: {error}",
                )
            )
        except BaseException:
            try:
                events.put(
                    JobUpdate(job_id, "error", job.label, payload=traceback.format_exc())
                )
            except Exception:  # pragma: no cover - queue already torn down
                return


class JobRunner:
    """A persistent pool of generic sampling workers plus a job scheduler.

    Jobs submitted with :meth:`submit` land on one shared task queue;
    whichever worker frees up first pulls the next job, so heterogeneous
    batches load-balance naturally.  :meth:`stream` yields
    :class:`JobUpdate` events (live checkpoints, results, errors) until
    every outstanding job settles; :meth:`run` drains the stream and
    returns ``{job_id: result}``, raising :class:`~repro.errors.ExecError`
    if any job failed.

    A failed job never poisons the pool: its error is recorded (``errors``
    mapping) and the worker moves on to the next job.  A worker that *dies*
    mid-job (OOM kill, segfault) fails the job it had announced — or, if it
    died before the announcement could land, the orphaned job is failed as
    soon as the remaining workers are provably idle — and the survivors
    keep draining the queue.  Each worker owns a private event queue (a
    dying worker can wedge only its own channel, never a sibling's), which
    is what makes those guarantees hold under arbitrary kill timing.
    """

    def __init__(self, workers: int = 2, start_method: str | None = None) -> None:
        if workers < 1:
            raise ModelError(f"JobRunner needs workers >= 1, got {workers}")
        from repro.exec.pool import default_start_method

        self._ctx = mp.get_context(start_method or default_start_method())
        self._tasks = self._ctx.Queue()
        self.workers = int(workers)
        # SimpleQueues: a worker's put is a synchronous pipe write (no
        # feeder thread), so a job's "started" announcement is durably in
        # the pipe before execution begins — the window in which a dying
        # worker can take a job down with it unannounced is a few
        # instructions, and the loss inference in _next_event covers even
        # that.
        self._events = [self._ctx.SimpleQueue() for _ in range(self.workers)]
        # One cancellation channel per worker; cancel() broadcasts the job
        # id to all of them (only the worker holding the job acts on it).
        control_pairs = [self._ctx.Pipe(duplex=False) for _ in range(self.workers)]
        self._controls = [sender for _, sender in control_pairs]
        self._processes = [
            self._ctx.Process(
                target=_job_worker_main,
                args=(self._tasks, events, receiver),
                daemon=True,
            )
            for events, (receiver, _) in zip(self._events, control_pairs)
        ]
        for process in self._processes:
            process.start()
        self._ids = itertools.count()
        self._jobs: dict[int, SamplingJob] = {}
        self._pending: set[int] = set()
        self._active: dict[int, int] = {}  # worker pid -> job it is executing
        self._quiet_seconds = 0.0
        # Guards the scheduling state (_jobs/_pending/_active/results/
        # errors) so one thread may submit while another drains
        # next_event — the repro.serve daemon does exactly that.  The
        # event *wait* is never under the lock; only the bookkeeping is.
        self._lock = threading.Lock()
        self.results: dict[int, object] = {}
        self.errors: dict[int, str] = {}
        #: Worker-side wall-clock seconds per completed job (from the
        #: result event's ``elapsed`` field).
        self.elapsed: dict[int, float] = {}
        self._closed = False

    def submit(self, job: SamplingJob, trace: dict | None = None) -> int:
        """Queue a job; returns its id (the key into ``results``/``errors``).

        ``trace`` optionally carries an exported trace context
        (:func:`repro.obs.trace.export_context` shape) to parent the
        worker-side spans on; when omitted and tracing is enabled in this
        process, the ambient context is captured automatically.
        """
        if not isinstance(job, SamplingJob):
            raise ModelError(f"submit needs a SamplingJob, got {type(job).__name__}")
        self._ensure_open()
        with _obs_trace.span("runner.submit", label=job.label, kind=job.kind):
            if trace is None:
                trace = _obs_trace.export_context()
            with self._lock:
                job_id = next(self._ids)
                self._jobs[job_id] = job
                self._pending.add(job_id)
            self._tasks.put((job_id, job, trace))
        return job_id

    def cancel(self, job_id: int) -> bool:
        """Request cancellation of a submitted job; returns True if still open.

        Cancellation is cooperative: a job still sitting in the queue is
        discarded the moment a worker pulls it; a running streamed job
        stops at its next checkpoint boundary (a running ``sample_many``
        has no boundaries and runs to completion).  Either way the job
        settles through the normal event stream with a
        ``CancelledError: ...`` error event — cancel() never blocks.
        Cancelling an already-settled or unknown job id returns False.
        """
        self._ensure_open()
        if job_id not in self._pending:
            return False
        for sender in self._controls:
            try:
                sender.send(job_id)
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        return True

    def stream(self):
        """Yield :class:`JobUpdate` events until every submitted job settles."""
        self._ensure_open()
        while self._pending:
            event = self.next_event()
            if event is not None:
                yield event

    def _settle(self, job_id: int) -> None:
        self._pending.discard(job_id)
        self._active = {
            pid: active for pid, active in self._active.items() if active != job_id
        }

    def run(self) -> dict[int, object]:
        """Drain the stream; return ``{job_id: result}`` or raise on failure."""
        for _ in self.stream():
            pass
        if self.errors:
            job_id, message = next(iter(self.errors.items()))
            raise ExecError(
                f"{len(self.errors)} job(s) failed; first: "
                f"[{self._jobs[job_id].label}] {message}"
            )
        return dict(self.results)

    def run_all(self, jobs) -> list[tuple[object, str | None]]:
        """Submit ``jobs``, drain the stream, return aligned (result, error) pairs.

        The failure-isolating sibling of :meth:`run`: one failed job does
        not raise — its slot carries ``(None, message)`` while every other
        job's ``(result, None)`` is still returned.  Pair ``i`` corresponds
        to ``jobs[i]``.  Sweep harnesses use this to keep one broken grid
        cell from discarding the rest of the table.
        """
        job_ids = [self.submit(job) for job in jobs]
        for _ in self.stream():
            pass
        return [
            (self.results.get(job_id), self.errors.get(job_id))
            for job_id in job_ids
        ]

    def next_event(self, timeout: float | None = None) -> JobUpdate | None:
        """Return the next :class:`JobUpdate`, or None if ``timeout`` expires.

        The resumable core of :meth:`stream`, usable directly by callers
        that multiplex a runner with other work (the :mod:`repro.serve`
        dispatcher polls this with a short timeout while jobs are
        submitted concurrently from another thread).  All bookkeeping —
        ``results``/``errors``, worker-pid attribution, dead-worker
        inference — happens here, so interleaving ``next_event`` calls
        with :meth:`stream` is safe.  With ``timeout=None`` and nothing
        pending this blocks until a job is submitted *and* produces an
        event; pass a timeout when submissions happen concurrently.
        """
        self._ensure_open()
        deadline = None if timeout is None else time.monotonic() + timeout
        readers = {events._reader: events for events in self._events}
        while True:
            wait_for = _POLL_INTERVAL
            if deadline is not None:
                wait_for = min(wait_for, max(0.0, deadline - time.monotonic()))
            started_wait = time.monotonic()
            ready = mp_connection.wait(list(readers), timeout=wait_for)
            if ready:
                self._quiet_seconds = 0.0
                event = readers[ready[0]].get()
                self._record(event)
                return event
            # Quiet time accumulates *across* calls: repeated short-timeout
            # polling (the serve dispatcher) converges on the same liveness
            # inference as one long blocking call, after the same grace
            # period a just-dead worker gets for in-flight events.
            self._quiet_seconds += time.monotonic() - started_wait
            if self._pending and self._quiet_seconds >= 2 * _POLL_INTERVAL:
                inferred = self._infer_lost_job()
                if inferred is not None:
                    self._record(inferred)
                    return inferred
            if deadline is not None and time.monotonic() >= deadline:
                return None

    def _record(self, event: JobUpdate) -> None:
        """Fold one event into the runner's bookkeeping (idempotent per job)."""
        with self._lock:
            if event.kind == "started":
                self._active[event.payload] = event.job_id
            elif event.kind == "result":
                self.results[event.job_id] = event.payload
                if event.elapsed is not None:
                    self.elapsed[event.job_id] = event.elapsed
                self._settle(event.job_id)
            elif event.kind == "error":
                self.errors[event.job_id] = event.payload
                self._settle(event.job_id)

    def _infer_lost_job(self) -> JobUpdate | None:
        """Liveness inference after two quiet polls: fail provably lost jobs."""
        # A dead worker that had announced a job loses exactly that
        # job; surviving workers keep draining the queue.  Snapshot the
        # scheduling state under the lock so a concurrent submit cannot
        # mutate the sets mid-inference.
        with self._lock:
            active = dict(self._active)
            pending = set(self._pending)
        for process in self._processes:
            if not process.is_alive() and process.pid in active:
                with self._lock:
                    job_id = self._active.pop(process.pid)
                _obs_trace.event(
                    "runner.job_lost",
                    job_id=job_id,
                    label=self._jobs[job_id].label,
                    worker_pid=process.pid,
                    exitcode=process.exitcode,
                    reason="died_executing",
                )
                return JobUpdate(
                    job_id,
                    "error",
                    self._jobs[job_id].label,
                    payload=(
                        f"worker {process.pid} died executing this job "
                        f"(exit code {process.exitcode})"
                    ),
                )
        if all(not process.is_alive() for process in self._processes):
            self.close(force=True)
            raise ExecError(
                "all JobRunner workers died with jobs outstanding"
            ) from None
        # A worker that died in the instant between pulling a job off
        # the task queue and announcing it leaves the job unaccounted:
        # pending, claimed by no one, queues silent.  Once every live
        # worker is provably idle, "still queued" is impossible — an
        # idle worker would have picked it up — so fail it rather than
        # poll forever.
        dead_unaccounted = [
            process
            for process in self._processes
            if not process.is_alive() and process.pid not in active
        ]
        live_busy = any(
            process.is_alive() and process.pid in active
            for process in self._processes
        )
        unannounced = pending - set(active.values())
        if dead_unaccounted and unannounced and not live_busy:
            job_id = min(unannounced)
            victim = dead_unaccounted[0]
            _obs_trace.event(
                "runner.job_lost",
                job_id=job_id,
                label=self._jobs[job_id].label,
                worker_pid=victim.pid,
                exitcode=victim.exitcode,
                reason="died_unannounced",
            )
            return JobUpdate(
                job_id,
                "error",
                self._jobs[job_id].label,
                payload=(
                    f"worker {victim.pid} (exit code {victim.exitcode}) "
                    "died before announcing a job; this pending job was "
                    "likely consumed and lost"
                ),
            )
        return None

    def _ensure_open(self) -> None:
        if self._closed:
            raise ExecError("this JobRunner has been closed")

    def close(self, force: bool = False) -> None:
        """Stop the workers (idempotent).  Outstanding jobs are abandoned."""
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            if force:
                process.terminate()
            else:
                try:
                    self._tasks.put(None)
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck-worker safety net
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        self._tasks.close()
        for events in self._events:
            events.close()
        for sender in self._controls:
            try:
                sender.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"JobRunner(workers={self.workers}, pending={len(self._pending)}, "
            f"done={len(self.results)}, failed={len(self.errors)})"
        )
