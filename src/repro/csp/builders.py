"""Constructors for local CSPs named in the paper.

Paper Section 2.2 calls out dominating sets ("a cover constraint on each
inclusive neighbourhood") and maximal independent sets ("a dominating
independent set") as examples of local CSPs beyond MRFs.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.csp.model import Constraint, LocalCSP
from repro.errors import ModelError
from repro.graphs.structure import check_vertex_labels
from repro.mrf.model import MRF

__all__ = [
    "dominating_set_csp",
    "maximal_independent_set_csp",
    "mrf_as_csp",
    "coloring_csp",
    "not_all_equal_csp",
]


def _cover_table(arity: int, weight_per_pick: float = 1.0) -> np.ndarray:
    """Table of the "at least one chosen" constraint with per-pick weight.

    Entry for local spins ``(s_1..s_k)`` is ``0`` if no ``s_i = 1``, else
    ``weight_per_pick ** (#ones)``.  With weight 1 this is the plain cover
    constraint; other weights tilt towards smaller/larger dominating sets.
    """
    table = np.zeros((2,) * arity)
    for index in np.ndindex(*table.shape):
        ones = sum(index)
        if ones >= 1:
            table[index] = weight_per_pick**ones
    return table


def dominating_set_csp(graph: nx.Graph, weight: float = 1.0) -> LocalCSP:
    """Distribution over dominating sets of ``graph``.

    One cover constraint per inclusive neighbourhood ``Gamma+(v)``: at least
    one vertex of ``Gamma+(v)`` carries spin 1.  Vertices appear in many
    scopes, so the per-pick ``weight`` is applied once per vertex via a
    dedicated unary constraint rather than inside each cover table.
    """
    check_vertex_labels(graph)
    if weight <= 0:
        raise ModelError(f"dominating set weight must be > 0, got {weight}")
    n = graph.number_of_nodes()
    constraints = []
    for v in range(n):
        scope = tuple(sorted(set(graph.neighbors(v)) | {v}))
        constraints.append(
            Constraint(scope, _cover_table(len(scope)), name=f"cover({v})")
        )
    if weight != 1.0:
        unary = np.array([1.0, weight])
        for v in range(n):
            constraints.append(Constraint((v,), unary, name=f"pick-weight({v})"))
    return LocalCSP(n, 2, constraints, name=f"dominating-set(w={weight})")


def maximal_independent_set_csp(graph: nx.Graph) -> LocalCSP:
    """Uniform distribution over maximal independent sets (MIS).

    An MIS is a dominating independent set (paper Section 2.2): combine the
    per-edge independence constraint with the per-inclusive-neighbourhood
    cover constraint.
    """
    check_vertex_labels(graph)
    n = graph.number_of_nodes()
    constraints = []
    independence = np.array([[1.0, 1.0], [1.0, 0.0]])
    for u, v in sorted((min(e), max(e)) for e in graph.edges()):
        constraints.append(Constraint((u, v), independence, name=f"indep({u},{v})"))
    for v in range(n):
        scope = tuple(sorted(set(graph.neighbors(v)) | {v}))
        constraints.append(
            Constraint(scope, _cover_table(len(scope)), name=f"cover({v})")
        )
    return LocalCSP(n, 2, constraints, name="maximal-independent-set")


def mrf_as_csp(mrf: MRF) -> LocalCSP:
    """Express an MRF as the equivalent weighted local CSP.

    One binary constraint per edge (the activity matrix) and one unary
    constraint per vertex (the activity vector) — the embedding that makes
    MRFs "a special class of weighted local CSPs" (Section 2.2).  Used to
    cross-validate the CSP chains against the MRF chains.
    """
    constraints = []
    for u, v in mrf.edges:
        constraints.append(
            Constraint((u, v), mrf.edge_activity(u, v), name=f"edge({u},{v})")
        )
    for v in range(mrf.n):
        constraints.append(Constraint((v,), mrf.vertex_activity[v], name=f"vertex({v})"))
    return LocalCSP(mrf.n, mrf.q, constraints, name=f"csp[{mrf.name}]")


def coloring_csp(graph: nx.Graph, q: int) -> LocalCSP:
    """Proper q-colouring expressed directly as a binary CSP."""
    check_vertex_labels(graph)
    if q < 2:
        raise ModelError(f"coloring_csp needs q >= 2, got {q}")
    table = np.ones((q, q)) - np.eye(q)
    constraints = [
        Constraint((min(u, v), max(u, v)), table, name=f"neq({u},{v})")
        for u, v in graph.edges()
    ]
    return LocalCSP(graph.number_of_nodes(), q, constraints, name=f"coloring-csp(q={q})")


def not_all_equal_csp(scopes: list[tuple[int, ...]], n: int, q: int) -> LocalCSP:
    """Hypergraph colouring: each scope must not be monochromatic.

    A genuinely multivariate CSP (arity > 2) exercising the ``2^k - 1``-factor
    LocalMetropolis filter of the paper's CSP remark.
    """
    if q < 2:
        raise ModelError(f"not_all_equal_csp needs q >= 2, got {q}")
    constraints = []
    for scope in scopes:
        arity = len(scope)
        if arity < 2:
            raise ModelError("NAE constraints need arity >= 2")
        table = np.ones((q,) * arity)
        for spin in range(q):
            table[(spin,) * arity] = 0.0
        constraints.append(Constraint(scope, table, name=f"nae{tuple(scope)}"))
    return LocalCSP(n, q, constraints, name="not-all-equal")
