"""Graph substrate: generators and structural utilities.

All graphs in this library are ``networkx.Graph`` instances whose vertices are
the integers ``0..n-1``.  The generators in :mod:`repro.graphs.generators`
guarantee this labelling; :func:`repro.graphs.structure.normalize_graph`
converts arbitrary graphs.
"""

from repro.graphs.generators import (
    binary_tree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    double_star_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    ladder_graph,
    path_graph,
    random_bipartite_regular_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.structure import (
    adjacency_lists,
    ball,
    diameter,
    greedy_coloring_schedule,
    is_independent_set,
    is_strongly_self_avoiding,
    max_degree,
    normalize_graph,
    strongly_self_avoiding_walks,
)

__all__ = [
    "adjacency_lists",
    "ball",
    "binary_tree_graph",
    "caterpillar_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "diameter",
    "double_star_graph",
    "erdos_renyi_graph",
    "greedy_coloring_schedule",
    "grid_graph",
    "hypercube_graph",
    "is_independent_set",
    "is_strongly_self_avoiding",
    "ladder_graph",
    "max_degree",
    "normalize_graph",
    "path_graph",
    "random_bipartite_regular_graph",
    "random_regular_graph",
    "random_tree",
    "star_graph",
    "strongly_self_avoiding_walks",
    "torus_graph",
]
