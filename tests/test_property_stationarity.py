"""Property-based stationarity: the paper's theorems on *random* models.

E1 verifies Proposition 3.1 and Theorem 4.1 on a fixed model zoo; these
tests let hypothesis draw random graphs and random (soft or hard) activity
tables and re-verify, every time, that

* LubyGlauber's exact transition matrix is reversible w.r.t. the exact
  Gibbs distribution, and
* LocalMetropolis' exact transition matrix is reversible w.r.t. the exact
  Gibbs distribution (including random edge coins), and
* the CSP LocalMetropolis keeps the CSP Gibbs measure stationary for random
  constraint tables of mixed arity.

This is as close to a mechanical re-proof of the detailed-balance
calculations (Sections 3 and 4.1) as testing gets.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chains.csp_chains import local_metropolis_csp_transition_matrix
from repro.chains.transition import (
    is_reversible,
    local_metropolis_transition_matrix,
    luby_glauber_transition_matrix,
)
from repro.csp import Constraint, LocalCSP, exact_csp_gibbs_distribution
from repro.graphs import cycle_graph, path_graph
from repro.mrf import MRF, exact_gibbs_distribution


def random_soft_mrf(n: int, q: int, seed: int, graph=None) -> MRF:
    """Random strictly positive activities: every state reachable."""
    rng = np.random.default_rng(seed)
    if graph is None:
        graph = path_graph(n) if seed % 2 == 0 else cycle_graph(max(n, 3))
        n = graph.number_of_nodes()
    edge_activities = {}
    for u, v in graph.edges():
        matrix = rng.uniform(0.1, 2.0, size=(q, q))
        edge_activities[(min(u, v), max(u, v))] = (matrix + matrix.T) / 2.0
    vertex = rng.uniform(0.1, 2.0, size=(n, q))
    return MRF(graph, q, edge_activities, vertex)


def random_hard_mrf(n: int, q: int, seed: int) -> MRF:
    """Random 0/1 symmetric activities, rejecting infeasible-only models."""
    rng = np.random.default_rng(seed)
    graph = path_graph(n)
    while True:
        edge_activities = {}
        for u, v in graph.edges():
            matrix = (rng.random((q, q)) < 0.7).astype(float)
            matrix = np.maximum(matrix, matrix.T)
            if np.all(matrix == 0):
                matrix[0, 1] = matrix[1, 0] = 1.0
            edge_activities[(u, v)] = matrix
        mrf = MRF(graph, q, edge_activities, np.ones(q))
        feasible = any(
            mrf.is_feasible(config)
            for config in itertools.product(range(q), repeat=n)
        )
        if feasible:
            return mrf
        seed += 1
        rng = np.random.default_rng(seed)


class TestRandomSoftModels:
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 4), q=st.integers(2, 3))
    @settings(max_examples=15, deadline=None)
    def test_luby_glauber_reversible(self, seed, n, q):
        mrf = random_soft_mrf(n, q, seed)
        matrix = luby_glauber_transition_matrix(mrf)
        gibbs = exact_gibbs_distribution(mrf)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert is_reversible(matrix, gibbs.probs, atol=1e-10)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 3), q=st.integers(2, 3))
    @settings(max_examples=12, deadline=None)
    def test_local_metropolis_reversible(self, seed, n, q):
        """Random soft activities exercise the probabilistic edge coins of
        Algorithm 2's filter — the fully general Theorem 4.1 case."""
        mrf = random_soft_mrf(n, q, seed, graph=path_graph(n))
        matrix = local_metropolis_transition_matrix(mrf)
        gibbs = exact_gibbs_distribution(mrf)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert is_reversible(matrix, gibbs.probs, atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_full_filter_reversible_on_random_hard_models(self, seed):
        """The complete three-factor filter stays reversible on random
        hard-constraint models too."""
        mrf = random_hard_mrf(3, 3, seed)
        gibbs = exact_gibbs_distribution(mrf)
        full = local_metropolis_transition_matrix(mrf)
        assert is_reversible(full, gibbs.probs, atol=1e-10)


class TestRandomHardModels:
    @given(seed=st.integers(0, 10_000), q=st.integers(2, 3))
    @settings(max_examples=12, deadline=None)
    def test_both_chains_reversible(self, seed, q):
        mrf = random_hard_mrf(3, q, seed)
        gibbs = exact_gibbs_distribution(mrf)
        for builder in (luby_glauber_transition_matrix, local_metropolis_transition_matrix):
            try:
                matrix = builder(mrf)
            except Exception:
                # Hard random models may violate the well-definedness
                # assumptions (paper footnote 1 / condition (6)); those
                # instances are outside the theorems' scope.
                continue
            assert is_reversible(matrix, gibbs.probs, atol=1e-10)


class TestRandomCSPs:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_csp_local_metropolis_stationary(self, seed):
        """Random mixed-arity soft constraints: Gibbs stays stationary."""
        rng = np.random.default_rng(seed)
        n, q = 3, 2
        constraints = [
            Constraint((0, 1), self._soft_table(rng, (q, q)), name="c01"),
            Constraint((1, 2), self._soft_table(rng, (q, q)), name="c12"),
            Constraint((0, 1, 2), self._soft_table(rng, (q, q, q)), name="c012"),
            Constraint((2,), rng.uniform(0.2, 1.5, size=q), name="c2"),
        ]
        csp = LocalCSP(n, q, constraints)
        matrix = local_metropolis_csp_transition_matrix(csp)
        gibbs = exact_csp_gibbs_distribution(csp)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.allclose(gibbs.probs @ matrix, gibbs.probs, atol=1e-10)
        assert is_reversible(matrix, gibbs.probs, atol=1e-10)

    @staticmethod
    def _soft_table(rng, shape):
        table = rng.uniform(0.2, 1.5, size=shape)
        # Binary constraints of an MRF must be symmetric; higher-arity CSP
        # tables need no symmetry — use them as drawn.
        if len(shape) == 2:
            table = (table + table.T) / 2.0
        return table
