"""Canonical serialization: to_dict/from_dict round-trips and fingerprints.

The contract under test (see :mod:`repro.serialize`): a round-tripped
model is *operationally identical* — same exact distribution, same
sampling bits for the same seed — and ``model_fingerprint()`` is stable
across round trips, independent of cosmetic names, and sensitive to
every parameter that can reach a sampled bit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.csp.builders import (
    coloring_csp,
    dominating_set_csp,
    maximal_independent_set_csp,
    not_all_equal_csp,
)
from repro.csp.model import LocalCSP
from repro.errors import ModelError
from repro.graphs import cycle_graph, grid_graph, path_graph, random_regular_graph
from repro.mrf import (
    hardcore_mrf,
    ising_mrf,
    potts_mrf,
    proper_coloring_mrf,
    uniform_mrf,
)
from repro.mrf.model import MRF
from repro.serialize import (
    canonical_json,
    model_from_dict,
    model_to_dict,
    payload_fingerprint,
)

SEED = 20170625


def _random_graph(rng):
    kind = rng.integers(4)
    if kind == 0:
        return path_graph(int(rng.integers(2, 7)))
    if kind == 1:
        return cycle_graph(int(rng.integers(3, 8)))
    if kind == 2:
        return grid_graph(2, int(rng.integers(2, 4)))
    return random_regular_graph(2, int(rng.integers(4, 8)), seed=int(rng.integers(2**31)))


def _random_mrf(rng) -> MRF:
    graph = _random_graph(rng)
    family = rng.integers(5)
    if family == 0:
        return proper_coloring_mrf(graph, int(rng.integers(3, 6)))
    if family == 1:
        return hardcore_mrf(graph, float(rng.uniform(0.2, 2.5)))
    if family == 2:
        return ising_mrf(graph, float(rng.uniform(0.5, 2.0)))
    if family == 3:
        return potts_mrf(graph, int(rng.integers(2, 5)), float(rng.uniform(0.5, 2.0)))
    return uniform_mrf(graph, int(rng.integers(2, 4)))


def _random_csp(rng) -> LocalCSP:
    graph = _random_graph(rng)
    family = rng.integers(4)
    if family == 0:
        return dominating_set_csp(graph, weight=float(rng.uniform(0.5, 2.0)))
    if family == 1:
        return maximal_independent_set_csp(graph)
    if family == 2:
        return coloring_csp(graph, int(rng.integers(3, 6)))
    n = graph.number_of_nodes()
    scopes = sorted({tuple(sorted({v, *graph.neighbors(v)})) for v in range(n)})
    scopes = [s for s in scopes if len(s) >= 2]
    if not scopes:
        return coloring_csp(graph, 3)
    return not_all_equal_csp(scopes, n=n, q=int(rng.integers(2, 4)))


def _assert_equivalent(model, clone):
    assert type(clone) is type(model)
    assert clone.n == model.n and clone.q == model.q
    assert clone.name == model.name
    assert clone.model_fingerprint() == model.model_fingerprint()
    # Operational identity: identical sampling bits for an identical seed.
    a = repro.sample(model, rounds=6, seed=SEED)
    b = repro.sample(clone, rounds=6, seed=SEED)
    np.testing.assert_array_equal(a, b)


class TestFuzzRoundTrip:
    def test_mrf_families_roundtrip_through_json(self):
        rng = np.random.default_rng(SEED)
        for _ in range(25):
            model = _random_mrf(rng)
            payload = json.loads(json.dumps(model.to_dict()))
            _assert_equivalent(model, MRF.from_dict(payload))

    def test_csp_families_roundtrip_through_json(self):
        rng = np.random.default_rng(SEED + 1)
        for _ in range(25):
            model = _random_csp(rng)
            payload = json.loads(json.dumps(model.to_dict()))
            _assert_equivalent(model, LocalCSP.from_dict(payload))

    def test_dispatching_helpers_roundtrip_both_types(self):
        rng = np.random.default_rng(SEED + 2)
        for build in (_random_mrf, _random_csp):
            model = build(rng)
            clone = model_from_dict(json.loads(json.dumps(model_to_dict(model))))
            _assert_equivalent(model, clone)


class TestFingerprint:
    def test_name_is_cosmetic(self, path3_coloring):
        payload = path3_coloring.to_dict()
        payload["name"] = "renamed"
        clone = MRF.from_dict(payload)
        assert clone.name == "renamed"
        assert clone.model_fingerprint() == path3_coloring.model_fingerprint()

    def test_csp_constraint_names_are_cosmetic(self):
        csp = dominating_set_csp(cycle_graph(4))
        payload = csp.to_dict()
        for constraint in payload["constraints"]:
            constraint["name"] = "anon"
        clone = LocalCSP.from_dict(payload)
        assert clone.model_fingerprint() == csp.model_fingerprint()

    def test_parameters_reach_the_fingerprint(self):
        graph = cycle_graph(5)
        assert (
            hardcore_mrf(graph, 1.0).model_fingerprint()
            != hardcore_mrf(graph, 1.5).model_fingerprint()
        )
        assert (
            proper_coloring_mrf(graph, 3).model_fingerprint()
            != proper_coloring_mrf(graph, 4).model_fingerprint()
        )
        assert (
            dominating_set_csp(graph, weight=1.0).model_fingerprint()
            != dominating_set_csp(graph, weight=2.0).model_fingerprint()
        )

    def test_fingerprint_stable_across_processes_contract(self, path3_coloring):
        # sha256 over canonical JSON: recomputing must be bit-stable.
        assert (
            path3_coloring.model_fingerprint()
            == MRF.from_dict(path3_coloring.to_dict()).model_fingerprint()
        )

    def test_constraint_order_is_significant(self):
        # Factor evaluation order fixes float-product order, hence bits:
        # reordering constraints is a *different* canonical payload.
        csp = coloring_csp(path_graph(3), 3)
        payload = csp.to_dict()
        reordered = dict(payload, constraints=list(reversed(payload["constraints"])))
        assert payload_fingerprint(
            {k: v for k, v in payload.items() if k != "name"}
        ) != payload_fingerprint(
            {k: v for k, v in reordered.items() if k != "name"}
        )


class TestMalformed:
    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError, match="type"):
            model_from_dict({"type": "bogus"})

    def test_non_dict_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict([1, 2, 3])

    def test_mrf_table_count_mismatch_rejected(self, path3_coloring):
        payload = path3_coloring.to_dict()
        payload["edge_activities"] = payload["edge_activities"][:-1]
        with pytest.raises(ModelError):
            MRF.from_dict(payload)

    def test_csp_malformed_constraint_rejected(self):
        payload = dominating_set_csp(cycle_graph(3)).to_dict()
        payload["constraints"][0] = {"scope": [0, 1]}  # missing table
        with pytest.raises(ModelError):
            LocalCSP.from_dict(payload)

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ModelError):
            canonical_json({"x": float("nan")})

    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, 2]}) == '{"a":[1.5,2],"b":1}'
