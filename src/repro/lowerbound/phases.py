"""Phases, cuts and the hardcore uniqueness threshold (Section 5.1).

* ``lambda_c(Delta) = (Delta-1)^(Delta-1) / (Delta-2)^Delta`` — sampling is
  tractable below it and intractable above (the "computational phase
  transition"); Theorem 1.3's ``Delta >= 6`` condition is exactly
  ``lambda_c(Delta) < 1``.
* The *phase* of a hardcore configuration on a bipartite gadget is the sign
  of the occupancy imbalance between the two sides.
* :func:`hardcore_tree_occupancies` computes the two stable fixed-point
  densities ``q± `` of the ``(Delta-1)``-ary tree recursion — the terminal
  spin densities of Proposition 5.3 — and the derived constants
  ``Theta = (1 - q+ q-)^2`` and ``Gamma = (1 - q+^2)(1 - q-^2)`` whose ratio
  powers Lemma 5.5.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConvergenceError, ModelError

__all__ = [
    "lambda_critical",
    "phase_of_configuration",
    "phase_vector",
    "cut_size",
    "is_max_cut_phase",
    "hardcore_tree_occupancies",
    "theta_gamma_constants",
]


def lambda_critical(delta: int) -> float:
    """Uniqueness threshold ``lambda_c(Delta) = (Delta-1)^(Delta-1)/(Delta-2)^Delta``."""
    if delta < 3:
        raise ModelError(f"lambda_critical needs Delta >= 3, got {delta}")
    return ((delta - 1) ** (delta - 1)) / ((delta - 2) ** delta)


def phase_of_configuration(
    config: Sequence[int], plus_side: Sequence[int], minus_side: Sequence[int]
) -> int:
    """Return the phase ``Y(sigma)``: +1, -1, or 0 on a tie.

    Paper Section 5.1.1: ``+`` if the plus side holds more occupied vertices
    than the minus side, ``-`` if fewer.  Ties (probability o(1) in the
    non-uniqueness regime) are reported as 0 so callers can discard them.
    """
    plus_count = sum(int(config[v]) for v in plus_side)
    minus_count = sum(int(config[v]) for v in minus_side)
    if plus_count > minus_count:
        return 1
    if plus_count < minus_count:
        return -1
    return 0


def phase_vector(config: Sequence[int], lift) -> list[int]:
    """Return ``Y = (Y_x)`` for each gadget copy of a :class:`CycleLift`."""
    return [
        phase_of_configuration(config, lift.copy_plus[x], lift.copy_minus[x])
        for x in range(lift.m)
    ]


def cut_size(phases: Sequence[int]) -> int:
    """Number of cycle edges whose endpoints carry different phases.

    ``Cut(Y) = |{(x, y) in E(H) : Y_x != Y_y}|`` for the cycle ordering.
    """
    m = len(phases)
    return sum(1 for x in range(m) if phases[x] != phases[(x + 1) % m])


def is_max_cut_phase(phases: Sequence[int]) -> bool:
    """True iff the phase vector alternates perfectly (a maximum cut).

    The even cycle has exactly two maximum cuts — the two alternating
    patterns; Theorem 5.4 says the Gibbs measure lands on one of them with
    probability ``1 - o(1)``, each with probability ``~ 1/2``.
    """
    m = len(phases)
    if any(phase == 0 for phase in phases):
        return False
    return all(phases[x] != phases[(x + 1) % m] for x in range(m))


def hardcore_tree_occupancies(
    delta: int, fugacity: float, tol: float = 1e-14, max_iterations: int = 100_000
) -> tuple[float, float]:
    """Return the phase densities ``(q-, q+)`` of Proposition 5.3.

    Iterates the hardcore tree recursion ``f(x) = lambda / (1 + x)^(Delta-1)``
    to its stable 2-periodic orbit ``(x_low, x_high)`` and converts to
    occupation probabilities ``q = x / (1 + x)``.  In the uniqueness regime
    (``fugacity <= lambda_c``) the orbit collapses and ``q- == q+``.
    """
    if delta < 3:
        raise ModelError(f"hardcore_tree_occupancies needs Delta >= 3, got {delta}")
    if fugacity <= 0:
        raise ModelError(f"fugacity must be > 0, got {fugacity}")
    d = delta - 1

    def recursion(x: float) -> float:
        return fugacity / (1.0 + x) ** d

    x = 0.0  # the extremal boundary condition (even levels unoccupied)
    for _ in range(max_iterations):
        next_x = recursion(recursion(x))
        if abs(next_x - x) < tol:
            x = next_x
            break
        x = next_x
    else:
        raise ConvergenceError("tree recursion did not settle on its 2-orbit")
    x_low = min(x, recursion(x))
    x_high = max(x, recursion(x))
    q_minus = x_low / (1.0 + x_low)
    q_plus = x_high / (1.0 + x_high)
    return q_minus, q_plus


def theta_gamma_constants(delta: int, fugacity: float) -> tuple[float, float]:
    """Return ``(Theta, Gamma)`` of Lemma 5.5.

    ``Theta = (1 - q+ q-)^2`` and ``Gamma = (1 - q+^2)(1 - q-^2)``; the
    lemma's amplification needs ``Theta > Gamma``, which holds exactly in
    the non-uniqueness regime where ``q+ != q-`` (AM-GM strictness).
    """
    q_minus, q_plus = hardcore_tree_occupancies(delta, fugacity)
    theta = (1.0 - q_plus * q_minus) ** 2
    gamma = (1.0 - q_plus**2) * (1.0 - q_minus**2)
    return theta, gamma
