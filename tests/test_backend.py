"""Tests for the pluggable array-backend layer (:mod:`repro.backend`).

Three layers of contract:

* **registry dispatch** — name resolution (explicit > ``$REPRO_BACKEND`` >
  numpy), clear errors for unknown names, construction-time (not mid-run)
  failure for registered-but-unusable backends, and custom registration;
* **cache-key / wire invariance** — ``backend in (None, "numpy")`` must
  hash and serialise exactly like a pre-backend-field spec (numpy is the
  bit-identical reference), while non-numpy backends enter both;
* **kernel parity** — fuzzed numpy-vs-torch agreement for every
  :class:`~repro.backend.base.ArrayBackend` operation the engines' advance
  paths use (skipped with a clear reason when torch is not installed).
"""

import importlib.util
import warnings

import numpy as np
import pytest
import scipy.sparse as sp

import repro.backend as backend_mod
from repro.api import make_ensemble
from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.errors import BackendError, BackendUnavailableError
from repro.graphs import cycle_graph
from repro.mrf import ising_mrf
from repro.spec import JobSpec

HAVE_TORCH = importlib.util.find_spec("torch") is not None

needs_torch = pytest.mark.skipif(
    not HAVE_TORCH, reason="torch is not installed (pip install 'repro-local-sampling[gpu]')"
)


@pytest.fixture
def scratch_backend():
    """Register a throwaway backend name and clean it up afterwards."""
    names = []

    def register(name, factory):
        register_backend(name, factory)
        names.append(name)

    yield register
    for name in names:
        backend_mod._FACTORIES.pop(name, None)
        backend_mod._INSTANCES.pop(name, None)


class TestRegistry:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name(None) == "numpy"
        assert get_backend(None).name == "numpy"
        assert get_backend(None).bitwise_reference

    def test_env_var_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend_name(None) == "numpy"
        # An explicit argument beats the environment.
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        assert resolve_backend_name("numpy") == "numpy"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert resolve_backend_name(None) == "numpy"

    def test_unknown_name_lists_available(self):
        with pytest.raises(BackendError, match="unknown array backend 'cupy'"):
            resolve_backend_name("cupy")
        with pytest.raises(BackendError, match="numpy") as info:
            get_backend("cupy")
        # The message enumerates every registered backend.
        for name in available_backends():
            assert name in str(info.value)

    def test_unknown_env_backend_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
        with pytest.raises(BackendError, match="no-such-backend"):
            get_backend(None)

    def test_builtin_names_registered(self):
        assert {"numpy", "torch", "torch-cpu", "torch-cuda"} <= set(available_backends())

    def test_instance_passthrough_and_caching(self):
        instance = NumpyBackend()
        assert get_backend(instance) is instance
        assert get_backend("numpy") is get_backend("numpy")

    def test_register_custom_backend(self, scratch_backend):
        scratch_backend("my-numpy", NumpyBackend)
        assert "my-numpy" in available_backends()
        assert get_backend("my-numpy").name == "numpy"

    def test_unusable_backend_fails_at_construction(self, scratch_backend):
        """A registered-but-unusable backend raises from get_backend, not mid-run."""

        def factory():
            raise BackendUnavailableError("backend 'broken' needs a library you lack")

        scratch_backend("broken", factory)
        with pytest.raises(BackendUnavailableError, match="broken"):
            get_backend("broken")
        # The same failure surfaces from engine construction, before any
        # sampling work starts.
        from repro.mrf import proper_coloring_mrf

        mrf = proper_coloring_mrf(cycle_graph(6), 5)
        with pytest.raises(BackendUnavailableError, match="broken"):
            make_ensemble(mrf, 3, method="local-metropolis", seed=1, backend="broken")

    def test_fallback_pair_still_rejects_unknown_backend(self):
        # The sequential fallback ignores the backend but an unknown name
        # must not be silently swallowed.
        mrf = ising_mrf(cycle_graph(6), beta=0.4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(BackendError, match="unknown array backend"):
                make_ensemble(mrf, 3, method="local-metropolis", seed=1, backend="nope")

    @pytest.mark.skipif(HAVE_TORCH, reason="torch is installed here")
    def test_torch_unavailable_raises_at_construction(self):
        with pytest.raises(BackendUnavailableError, match="torch"):
            get_backend("torch")

    @needs_torch
    def test_torch_cpu_constructs(self):
        xp = get_backend("torch-cpu")
        assert xp.name == "torch-cpu"
        assert not xp.bitwise_reference


class TestSpecBackendField:
    def _spec(self, backend):
        mrf = ising_mrf(cycle_graph(5), beta=0.3)
        return JobSpec.sample_many(mrf, 4, rounds=3, seed=7, backend=backend)

    def test_numpy_and_none_share_pre_backend_cache_key(self):
        """backend=None and backend='numpy' hash identically (bit-identical
        reference), and neither puts a 'backend' entry on the wire."""
        plain = self._spec(None)
        explicit = self._spec("numpy")
        assert plain.cache_key() == explicit.cache_key()
        assert "backend" not in plain.params_dict()
        assert "backend" not in explicit.params_dict()
        assert "backend" not in plain.to_wire()["params"]

    def test_non_numpy_backend_changes_cache_key(self):
        plain = self._spec(None)
        torchy = self._spec("torch")
        assert torchy.params_dict()["backend"] == "torch"
        assert plain.cache_key() != torchy.cache_key()

    def test_backend_round_trips_on_the_wire(self):
        spec = self._spec("torch")
        rebuilt = JobSpec.from_wire(spec.to_wire())
        assert rebuilt.backend == "torch"
        assert rebuilt.cache_key() == spec.cache_key()
        assert JobSpec.from_wire(self._spec(None).to_wire()).backend is None

    def test_unknown_backend_rejected_at_spec_construction(self):
        with pytest.raises(BackendError, match="unknown array backend"):
            self._spec("cupy")


class TestJobExecutorBackend:
    """The exec/serve job executor must forward ``spec.backend``.

    Regression: ``_execute_job`` rebuilds the facade calls argument by
    argument, so a spec submitted with a torch backend used to execute
    silently on numpy server-side.
    """

    def _run(self, spec):
        from repro.exec.jobs import _execute_job

        events = []
        _execute_job(0, spec, events.append)
        return next(e.payload for e in events if e.event == "result")

    def _spec(self, kind, backend):
        from repro.graphs import torus_graph
        from repro.mrf import proper_coloring_mrf

        if kind == "sample_many":
            mrf = proper_coloring_mrf(torus_graph(4, 4), 8)
            return JobSpec.sample_many(mrf, 8, rounds=6, seed=11, backend=backend)
        # tv_curve computes the exact Gibbs target first — keep it tiny.
        mrf = proper_coloring_mrf(cycle_graph(5), 3)
        return JobSpec.tv_curve(mrf, (1, 2), replicas=8, seed=11, backend=backend)

    @pytest.mark.parametrize("kind", ["sample_many", "tv_curve"])
    def test_unusable_backend_reaches_the_engine(self, kind):
        if HAVE_TORCH:
            pytest.skip("needs a registered-but-unusable builtin backend")
        with pytest.raises(BackendUnavailableError, match="torch"):
            self._run(self._spec(kind, "torch-cpu"))

    @needs_torch
    def test_torch_spec_executes_on_torch(self):
        from repro.api import run_spec

        spec = self._spec("sample_many", "torch-cpu")
        assert np.array_equal(self._run(spec), run_spec(spec))


def _random_csr(rng, nrows, ncols, density=0.3):
    mask = rng.random((nrows, ncols)) < density
    data = rng.integers(1, 4, size=mask.sum())
    matrix = sp.csr_matrix(
        (data, np.nonzero(mask)), shape=(nrows, ncols), dtype=np.int64
    )
    return matrix


@needs_torch
class TestTorchKernelParity:
    """Fuzzed parity: every backend op agrees with the numpy reference.

    Integer ops must agree exactly; float reductions to 1 ulp-ish
    (``rtol=1e-12`` on float64 — the op sequences are identical, only the
    kernel implementations differ).
    """

    @pytest.fixture(scope="class")
    def backends(self):
        return NumpyBackend(), get_backend("torch-cpu")

    @pytest.mark.parametrize("trial", range(10))
    def test_elementwise_and_indexing_ops(self, backends, trial):
        ref, alt = backends
        rng = np.random.default_rng(1000 + trial)
        n, r = int(rng.integers(3, 40)), int(rng.integers(1, 9))
        ints = rng.integers(0, 5, size=(n, r))
        other = rng.integers(0, 5, size=(n, r))
        floats = rng.random((n, r))
        rows = rng.integers(0, n, size=int(rng.integers(1, 2 * n)))
        counts = rng.integers(0, 3, size=len(rows))

        def both(op):
            return op(ref), alt.to_numpy(op(alt))

        for op, exact in [
            (lambda xp: xp.take_rows(xp.asarray(ints), xp.asarray(rows)), True),
            (lambda xp: xp.where(xp.asarray(ints % 2 == 0), xp.asarray(ints), 0), True),
            (lambda xp: xp.clip(xp.asarray(ints) - 2, 0, 3), True),
            (lambda xp: xp.minimum(xp.asarray(ints), xp.asarray(other)), True),
            (lambda xp: xp.flip(xp.asarray(ints), axis=1), True),
            (lambda xp: xp.sum(xp.asarray(ints <= 2), axis=1), True),
            (lambda xp: xp.cumsum(xp.asarray(floats), axis=1), False),
            (lambda xp: xp.argmax_axis(xp.asarray(ints) > 1, axis=1), True),
            (lambda xp: xp.bincount(xp.asarray(rows), minlength=n), True),
            (lambda xp: xp.repeat(xp.asarray(rows), xp.asarray(counts)), True),
            (lambda xp: xp.astype(xp.asarray(ints), np.int16), True),
        ]:
            got_ref, got_alt = both(op)
            if exact:
                np.testing.assert_array_equal(got_ref, got_alt)
            else:
                np.testing.assert_allclose(got_ref, got_alt, rtol=1e-12)

    @pytest.mark.parametrize("trial", range(10))
    def test_sparse_and_segment_ops(self, backends, trial):
        ref, alt = backends
        rng = np.random.default_rng(2000 + trial)
        nrows, ncols, r = (
            int(rng.integers(2, 20)),
            int(rng.integers(2, 20)),
            int(rng.integers(1, 7)),
        )
        matrix = _random_csr(rng, nrows, ncols)
        dense = rng.integers(0, 6, size=(ncols, r))
        mask = rng.random((ncols, r)) < 0.5

        got = alt.to_numpy(alt.spmm_int(alt.csr(matrix), alt.asarray(dense)))
        np.testing.assert_array_equal(ref.spmm_int(ref.csr(matrix), dense), got)

        got = alt.to_numpy(alt.spmm_count(alt.csr(matrix), alt.asarray(mask)))
        np.testing.assert_array_equal(ref.spmm_count(ref.csr(matrix), mask), got)

        sizes = rng.integers(1, 5, size=int(rng.integers(1, 10)))
        values = rng.random((int(sizes.sum()), r))
        np.testing.assert_allclose(
            ref.segment_prod(values, sizes),
            alt.to_numpy(alt.segment_prod(alt.asarray(values), sizes)),
            rtol=1e-12,
        )

    @pytest.mark.parametrize("trial", range(5))
    def test_neighbour_expansion_and_nonzero(self, backends, trial):
        ref, alt = backends
        rng = np.random.default_rng(3000 + trial)
        n = int(rng.integers(2, 25))
        degrees = rng.integers(0, 4, size=n)
        indptr = np.concatenate([[0], np.cumsum(degrees)])
        vertices = rng.integers(0, n, size=int(rng.integers(1, 2 * n)))
        ref_pair, ref_slots = ref.expand_neighbour_slots(vertices, degrees, indptr)
        alt_pair, alt_slots = alt.expand_neighbour_slots(
            alt.asarray(vertices), alt.asarray(degrees), alt.asarray(indptr)
        )
        np.testing.assert_array_equal(ref_pair, alt.to_numpy(alt_pair))
        np.testing.assert_array_equal(ref_slots, alt.to_numpy(alt_slots))
        flags = rng.random((n, 3)) < 0.4
        ref_rows, ref_cols = ref.nonzero_pairs(flags)
        alt_rows, alt_cols = alt.nonzero_pairs(alt.asarray(flags))
        np.testing.assert_array_equal(ref_rows, alt.to_numpy(alt_rows))
        np.testing.assert_array_equal(ref_cols, alt.to_numpy(alt_cols))
        np.testing.assert_array_equal(
            ref.nonzero1d(flags[:, 0]), alt.to_numpy(alt.nonzero1d(alt.asarray(flags[:, 0])))
        )

    def test_rng_bridge_is_stream_identical(self, backends):
        """Both backends consume the SAME numpy Generator draws, in order."""
        ref, alt = backends
        for draw in [
            lambda xp, rng: xp.uniform_spins(rng, 5, (4, 3), np.int8),
            lambda xp, rng: xp.random(rng, (4, 3)),
            lambda xp, rng: xp.random_f32(rng, (2, 6)),
            lambda xp, rng: xp.integers(rng, 7, (5,)),
        ]:
            got_ref = draw(ref, np.random.default_rng(42))
            got_alt = alt.to_numpy(draw(alt, np.random.default_rng(42)))
            np.testing.assert_array_equal(np.asarray(got_ref), got_alt)


@needs_torch
class TestTorchEngineParity:
    """Whole-engine checks on the torch backend (cheap smoke; the CI
    backend-parity job runs the full equivalence suites under
    ``REPRO_BACKEND=torch``)."""

    def test_torch_ensemble_is_deterministic_and_feasible(self):
        from repro.graphs import grid_graph
        from repro.mrf import proper_coloring_mrf

        mrf = proper_coloring_mrf(grid_graph(3, 3), 8)
        runs = [
            make_ensemble(mrf, 5, seed=11, backend="torch-cpu").run(6) for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0], runs[1])
        assert all(mrf.is_feasible(row) for row in runs[0])

    def test_luby_glauber_matches_numpy_bitwise(self):
        """LubyGlauber colouring only *compares* transferred floats, so even
        the torch backend reproduces the numpy trajectory bit-for-bit."""
        from repro.graphs import grid_graph
        from repro.chains.ensemble import EnsembleLubyGlauberColoring

        reference = EnsembleLubyGlauberColoring(grid_graph(3, 3), 8, 5, seed=11).run(8)
        torchy = EnsembleLubyGlauberColoring(
            grid_graph(3, 3), 8, 5, seed=11, backend="torch-cpu"
        ).run(8)
        np.testing.assert_array_equal(reference, torchy)
