"""Batched replica-ensemble engines: advance R independent chains at once.

Every empirical claim in this reproduction (TV decay, marginal error,
agreement curves) averages over hundreds-to-thousands of *independent*
replicas of the same chain.  Running those replicas one
:class:`~repro.chains.fastpaths.FastLocalMetropolisColoring` object at a
time leaves almost all the throughput on the table: per-round numpy-call
overhead dominates once ``n`` is modest, and per-chain construction
(greedy colouring, edge-array setup) is paid R times.

The ensembles in this module store all replicas in one array and advance
them with single whole-ensemble array operations:

* :class:`EnsembleLocalMetropolisColoring` — Algorithm 2 for proper
  q-colourings, R replicas per step;
* :class:`EnsembleLubyGlauberColoring` — Algorithm 1 for proper
  q-colourings, with the per-vertex Python neighbour loop of the
  single-replica fast path replaced by CSR-style neighbour arrays, so the
  rejection resampling of *all* pending (replica, vertex) pairs is one
  vectorised pass per rejection round;
* :class:`EnsembleGlauberDynamics` — batched single-site heat-bath Glauber
  for *general* pairwise MRFs (Ising, hardcore, ...), so ensembles are not
  colouring-only;
* :class:`EnsembleLubyGlauberMRF` — batched Algorithm 1 for general
  pairwise MRFs (hardcore, Ising, *list* colourings): each replica draws
  its own Luby independent set and heat-bath-resamples every selected
  vertex from its exact conditional marginal, with the per-vertex weight
  products assembled through CSR neighbour gathers and a segmented
  product over a deduplicated edge-activity stack;
* :class:`EnsembleLubyGlauberCSP` and :class:`EnsembleLocalMetropolisCSP` —
  the paper's CSP extensions (remarks after Algorithms 1-2) batched over
  replicas: constraint-scope evaluation is precompiled into flat-table
  offsets plus a constraint-incidence CSR scatter, so heat-bath marginals
  (LubyGlauber) and the ``2^k - 1``-factor mixing filter (LocalMetropolis)
  are whole-ensemble gathers and segmented reductions rather than
  per-vertex ``itertools`` loops.

Array-backend contract
----------------------

Every advance-path kernel below runs through an
:class:`~repro.backend.base.ArrayBackend` (the local ``xp``), selected by
the ``backend=`` constructor argument: numpy by default, torch CPU/CUDA
optionally.  Setup and precompute (CSR construction, table flattening,
greedy starts) stay plain numpy/scipy and hand the finished structures to
the backend once; diagnostics return numpy.  All backends draw randomness
from the engine's single numpy Generator through the backend RNG bridge,
so the proposal stream is backend-independent; only the numpy backend is
*bitwise* reproducible (see :mod:`repro.backend.base`).

Layout and exactness contract
-----------------------------

Publicly an ensemble is an ``(R, n)`` batch: ``config`` returns an
``(R, n)`` int64 numpy array, and ``run(steps)`` returns a fresh
``(R, n)`` copy.  Internally the colouring ensembles store the transposed
*vertex-major* ``(n, R)`` layout in the smallest integer dtype that holds
``q``: every per-edge operation then gathers contiguous rows, and the
edge-to-vertex "any incident edge failed" reduction is a sparse
incidence-matrix product — both memory-bandwidth bound rather than
Python-overhead bound.

Each replica evolves by exactly the same Markov kernel as the
corresponding sequential chain (same proposal distribution, same filters,
same tie-breaking rules), so replica ``i`` is *distributionally* identical
to a sequential run; the test-suite validates this with exact-stationarity
chi-squared tests and cross-implementation agreement.  Replicas are
mutually independent: all randomness is drawn from one shared RNG stream,
but no value is reused across replicas.  For
:class:`EnsembleGlauberDynamics` the equivalence is even bitwise: with
``replicas=1``, the same seed and the same initial configuration it
reproduces :class:`~repro.chains.glauber.GlauberDynamics` state-for-state.

Seed and stream contract
------------------------

Every engine accepts ``seed`` as an int, a
:class:`numpy.random.SeedSequence`, a ``numpy.random.Generator`` or
``None`` (see :func:`repro.chains.base.as_generator`).  One ensemble owns
exactly *one* PCG64 stream shared by all of its replicas; an int seed and
the ``SeedSequence`` wrapping it build the same stream, so both are
bit-reproducible.  This is the contract the sharded execution subsystem
(:mod:`repro.exec`) is built on: a shard plan spawns one ``SeedSequence``
child per shard and constructs each shard's engine from its child, which
makes the concatenated ``(R, n)`` trajectory a pure function of the root
sequence and the shard partition — *not* of how many OS processes execute
the shards.
"""

from __future__ import annotations

from collections.abc import Sequence
from time import perf_counter

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.backend import ArrayBackend, get_backend
from repro.chains.base import as_generator, greedy_feasible_config
from repro.chains.csp_chains import greedy_csp_config
from repro.chains.fastpaths import (
    build_csr_neighbours,
    greedy_coloring,
    sorted_edge_arrays,
)
from repro.csp.hypergraph import conflict_graph
from repro.csp.model import LocalCSP
from repro.errors import InfeasibleStateError, ModelError, StateSpaceTooLargeError
from repro.graphs.structure import check_vertex_labels
from repro.mrf.model import MRF
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace

__all__ = [
    "EnsembleTrajectoryMixin",
    "EnsembleLocalMetropolisColoring",
    "EnsembleLubyGlauberColoring",
    "EnsembleGlauberDynamics",
    "EnsembleLubyGlauberMRF",
    "EnsembleLubyGlauberCSP",
    "EnsembleLocalMetropolisCSP",
]


class EnsembleTrajectoryMixin:
    """Checkpointed advancement shared by every replica-ensemble engine.

    The convergence/diagnostics layer drives ensembles exclusively through
    this protocol: ``advance(steps)`` moves all replicas forward without
    materialising a batch copy, ``run(steps)`` advances and returns the
    fresh ``(R, n)`` batch, and ``iter_checkpoints(checkpoints)`` yields
    ``(round, batch)`` pairs at increasing round counts (measured from the
    ensemble's current position) — the trajectory-recording primitive the
    TV-decay and agreement curves are built on.

    Host classes provide ``step()`` and a ``config`` property returning the
    ``(R, n)`` batch.
    """

    def advance(self, steps: int):
        """Advance all replicas ``steps`` rounds; returns ``self`` for chaining."""
        if steps < 0:
            raise ModelError(f"advance needs steps >= 0, got {steps}")
        if not (_obs_metrics.enabled or _obs_trace.enabled):
            for _ in range(steps):
                self.step()
            return self
        return self._advance_instrumented(steps)

    def _advance_instrumented(self, steps: int):
        engine = type(self).__name__
        backend = getattr(getattr(self, "xp", None), "name", "python")
        with _obs_trace.span(
            "engine.advance",
            engine=engine,
            backend=backend,
            steps=int(steps),
            replicas=int(getattr(self, "replicas", 1)),
        ):
            start = perf_counter()
            for _ in range(steps):
                self.step()
            elapsed = perf_counter() - start
        if _obs_metrics.enabled and steps:
            _obs_metrics.inc("repro_engine_rounds_total", steps, engine=engine, backend=backend)
            _obs_metrics.inc("repro_engine_seconds_total", elapsed, engine=engine, backend=backend)
        return self

    def run(self, steps: int) -> np.ndarray:
        """Advance all replicas ``steps`` rounds; return the ``(R, n)`` batch."""
        return self.advance(steps).config

    def iter_checkpoints(self, checkpoints):
        """Yield ``(round, batch)`` at each checkpoint.

        ``checkpoints`` must be strictly increasing positive integers,
        counted from the ensemble's current position; the ensemble is left
        at the last checkpoint.
        """
        previous = 0
        for checkpoint in checkpoints:
            if int(checkpoint) != checkpoint or checkpoint <= previous:
                raise ModelError(
                    "checkpoints must be strictly increasing positive integers, "
                    f"got {list(checkpoints)!r}"
                )
            self.advance(int(checkpoint) - previous)
            previous = int(checkpoint)
            yield previous, self.config

    def write_batch_into(self, out: np.ndarray) -> np.ndarray:
        """Write the current ``(R, n)`` int64 batch into ``out``; return ``out``.

        The shard-publication hook of the multiprocess execution subsystem:
        :mod:`repro.exec` workers call this after every ``advance`` command
        to publish their shard's block of a ``multiprocessing.shared_memory``
        state array.  Hosts whose internal layout differs from the public
        batch (the vertex-major colouring/CSP engines) override it to write
        straight from internal state instead of materialising the
        intermediate ``config`` copy.
        """
        np.copyto(out, self.config)
        return out


def _record_metropolis_step(engine, blocked) -> None:
    """Accepted-move accounting for a LocalMetropolis round.

    ``blocked`` is the ``(n, R)`` boolean mask of vertices whose proposal
    failed; everything else accepted.  Called only when
    ``repro.obs.metrics.enabled`` — the single device->host sum below is
    the entire enabled-mode overhead of the Metropolis probes.
    """
    xp = engine.xp
    total = engine.n * engine.replicas
    rejected = int(xp.to_numpy(xp.sum(blocked)))
    name = type(engine).__name__
    _obs_metrics.inc("repro_engine_proposals_total", total, engine=name)
    _obs_metrics.inc("repro_engine_accepted_total", total - rejected, engine=name)


def _record_luby_step(engine, v_idx) -> None:
    """Independent-set size accounting for a LubyGlauber round.

    ``v_idx`` is the flat vertex index of every selected (vertex, replica)
    pair across all R replicas; the histogram records the per-replica mean
    independent-set size.
    """
    pairs = int(v_idx.shape[0])
    name = type(engine).__name__
    _obs_metrics.inc("repro_engine_luby_selected_total", pairs, engine=name)
    _obs_metrics.observe(
        "repro_engine_luby_set_size", pairs / max(engine.replicas, 1), engine=name
    )


def _spin_dtype(q: int) -> np.dtype:
    """Smallest signed integer dtype that holds spins ``0..q-1``.

    The ensemble kernels are memory-bound, so halving the element size is a
    direct throughput win.
    """
    if q <= 127:
        return np.dtype(np.int8)
    if q <= 32_767:
        return np.dtype(np.int16)
    return np.dtype(np.int64)


def _initial_spin_batch(
    initial,
    n: int,
    q: int,
    replicas: int,
    dtype: np.dtype,
    default_start,
    noun: str = "spins",
) -> np.ndarray:
    """Validate/tile a start spec into the internal ``(n, R)`` batch.

    ``initial`` is ``None`` (``default_start()`` replicated to all
    replicas), a length-n configuration shared by all replicas, or an
    ``(R, n)`` batch giving each replica its own start.  Shared by the
    colouring and CSP ensemble bases so their start semantics cannot
    drift.
    """
    if initial is None:
        base = np.asarray(default_start(), dtype=np.int64)
        return np.repeat(base[:, None], replicas, axis=1).astype(dtype)
    config = np.asarray(initial, dtype=np.int64)
    if config.shape == (n,):
        config = np.repeat(config[:, None], replicas, axis=1)
    elif config.shape == (replicas, n):
        config = config.T.copy()
    else:
        raise ModelError(
            f"initial configuration must have shape ({n},) or ({replicas}, {n}), "
            f"got {config.shape}"
        )
    if np.any(config < 0) or np.any(config >= q):
        raise ModelError(f"initial {noun} must lie in 0..{q - 1}")
    return config.astype(dtype)


def _as_region(region, n: int) -> np.ndarray:
    """Validate a vertex region into a sorted unique int64 array."""
    vertices = np.unique(np.asarray(sorted(int(v) for v in region), dtype=np.int64))
    if vertices.size == 0:
        raise ModelError("region must contain at least one vertex")
    if vertices[0] < 0 or vertices[-1] >= n:
        raise ModelError(
            f"region vertices must lie in 0..{n - 1}, got "
            f"[{int(vertices[0])}, {int(vertices[-1])}]"
        )
    return vertices


class _RegionSelector:
    """Precompiled masked-Luby structures for a vertex region.

    Restricting the Luby step to the *region-internal* edges is exact:
    heat-bath updates preserve the conditional Gibbs distribution given
    the clamped complement for any state-independently selected set that
    is independent *within itself*, and two region vertices are adjacent
    iff the connecting edge has both endpoints in the region.  Ranks are
    drawn only for region vertices (``(|S|, R)`` instead of ``(n, R)``),
    so a region step costs O(|S|·R) — the whole point of incremental
    resampling.
    """

    def __init__(self, xp: ArrayBackend, region: np.ndarray, edge_u, edge_v, n: int):
        self.xp = xp
        self.region = region
        self.size = int(region.size)
        self.region_d = xp.asarray(region)
        local_of = np.full(n, -1, dtype=np.int64)
        local_of[region] = np.arange(self.size, dtype=np.int64)
        if edge_u is not None and len(edge_u):
            internal = (local_of[edge_u] >= 0) & (local_of[edge_v] >= 0)
            leu = local_of[edge_u[internal]]
            lev = local_of[edge_v[internal]]
        else:
            leu = lev = np.zeros(0, dtype=np.int64)
        m = len(leu)
        if m:
            ones = np.ones(m, dtype=np.int32)
            arange = np.arange(m)
            self._leu_d = xp.asarray(leu)
            self._lev_d = xp.asarray(lev)
            self._side_u = xp.csr(
                sp.csr_matrix((ones, (leu, arange)), shape=(self.size, m))
            )
            self._side_v = xp.csr(
                sp.csr_matrix((ones, (lev, arange)), shape=(self.size, m))
            )
        else:
            self._leu_d = self._lev_d = None
            self._side_u = self._side_v = None

    def select_pairs(self, rng: np.random.Generator, replicas: int):
        """Luby-select over the region; return global ``(v_idx, r_idx)`` pairs."""
        mask = _batched_luby_select(
            self.xp, rng, self.size, replicas,
            self._leu_d, self._lev_d, self._side_u, self._side_v,
        )
        s_idx, r_idx = self.xp.nonzero_pairs(mask)
        return self.region_d[s_idx], r_idx


def _batched_luby_select(
    xp: ArrayBackend,
    rng: np.random.Generator,
    n: int,
    replicas: int,
    edge_u,
    edge_v,
    side_u,
    side_v,
):
    """Per-replica Luby step: i.i.d. ranks, strict local maxima win.

    Returns an ``(n, R)`` boolean mask; each column is an independent set
    of the graph given by the (device) edge arrays (ties lose on both
    sides, exactly as the sequential kernels).  ``side_u``/``side_v`` are
    backend CSR handles of the one-sided incidence matrices.  Shared by
    the colouring ensembles (simple graph) and the CSP ensembles (conflict
    graph).
    """
    if edge_u is None or int(edge_u.shape[0]) == 0:
        return xp.ones((n, replicas), dtype=bool)
    ranks = xp.random_f32(rng, (n, replicas))
    ru = ranks[edge_u]
    rv = ranks[edge_v]
    lose_counts = xp.spmm_count(side_u, ru <= rv) + xp.spmm_count(side_v, rv <= ru)
    return lose_counts == 0


class _EnsembleColoringBase(EnsembleTrajectoryMixin):
    """Shared state for the batched colouring chains.

    Parameters
    ----------
    graph:
        Simple graph with vertices ``0..n-1``.
    q:
        Number of colours.
    replicas:
        Number of independent replicas R advanced per step.
    initial:
        ``None`` (greedy colouring replicated to all replicas), a length-n
        configuration shared by all replicas, or an ``(R, n)`` batch giving
        each replica its own start.
    seed:
        Seed, :class:`numpy.random.SeedSequence` or Generator for the single
        shared RNG stream (module docstring: seed and stream contract).
    backend:
        Array backend name or instance (module docstring: array-backend
        contract); ``None`` resolves via ``$REPRO_BACKEND``, then numpy.
    """

    def __init__(
        self,
        graph: nx.Graph,
        q: int,
        replicas: int,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        check_vertex_labels(graph)
        if q < 2:
            raise ModelError(f"colouring needs q >= 2, got {q}")
        if replicas < 1:
            raise ModelError(f"ensemble needs replicas >= 1, got {replicas}")
        self.n = graph.number_of_nodes()
        self.q = int(q)
        self.replicas = int(replicas)
        self.graph = graph
        self._dtype = _spin_dtype(self.q)
        self.rng = as_generator(seed)
        self.xp = get_backend(backend)

        self._eu, self._ev = sorted_edge_arrays(graph)
        self._m = len(self._eu)
        self._build_adjacency()
        self._config = self.xp.asarray(self._initial_batch(initial))
        self.steps_taken = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> None:
        """CSR neighbour arrays plus the one-sided edge incidence matrices.

        ``side_u @ flags`` scatters a per-edge ``(m, R)`` flag array onto
        each edge's u endpoint (``side_v`` likewise); their sum is the full
        incidence used for "any incident edge failed" reductions.  Sparse
        matmul is the fastest edge-to-vertex scatter available from numpy
        land — ``np.logical_or.reduceat`` is ~50x slower on the same data.
        """
        xp = self.xp
        n, m = self.n, self._m
        self._degrees, self._indptr, self._csr_indices = build_csr_neighbours(
            self._eu, self._ev, n
        )
        self._degrees_d = xp.asarray(self._degrees)
        self._indptr_d = xp.asarray(self._indptr)
        self._csr_indices_d = xp.asarray(self._csr_indices)
        self._eu_d = xp.asarray(self._eu)
        self._ev_d = xp.asarray(self._ev)
        if m:
            ones = np.ones(m, dtype=np.int32)
            arange = np.arange(m)
            side_u = sp.csr_matrix((ones, (self._eu, arange)), shape=(n, m))
            side_v = sp.csr_matrix((ones, (self._ev, arange)), shape=(n, m))
            self._side_u = xp.csr(side_u)
            self._side_v = xp.csr(side_v)
            self._incidence = xp.csr((side_u + side_v).tocsr())
        else:
            self._side_u = self._side_v = self._incidence = None

    def _initial_batch(self, initial) -> np.ndarray:
        return _initial_spin_batch(
            initial,
            self.n,
            self.q,
            self.replicas,
            self._dtype,
            lambda: greedy_coloring(self.graph, self.q),
            noun="colours",
        )

    # ------------------------------------------------------------------
    # batch views and diagnostics
    # ------------------------------------------------------------------
    @property
    def config(self) -> np.ndarray:
        """The current ``(R, n)`` batch (an int64 numpy copy — safe to mutate)."""
        return self.xp.to_numpy(self._config).T.astype(np.int64)

    def write_batch_into(self, out: np.ndarray) -> np.ndarray:
        """Transposed write from the internal vertex-major state, no copy."""
        np.copyto(out, self.xp.to_numpy(self._config).T)
        return out

    def monochromatic_edges(self) -> np.ndarray:
        """Per-replica count of improper (monochromatic) edges, shape ``(R,)``."""
        if self._m == 0:
            return np.zeros(self.replicas, dtype=np.int64)
        xp = self.xp
        same = self._config[self._eu_d] == self._config[self._ev_d]
        return xp.to_numpy(xp.sum(same, axis=0))

    def proper_mask(self) -> np.ndarray:
        """Boolean ``(R,)`` mask of replicas whose colouring is proper."""
        return self.monochromatic_edges() == 0

    def is_proper(self) -> bool:
        """Return True iff *every* replica's colouring is proper."""
        return bool(self.proper_mask().all())

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------
    # region-restricted advancement (dynamic graphs)
    # ------------------------------------------------------------------
    def _resample_pairs(self, v_idx, r_idx) -> None:
        """Heat-bath-resample the given (vertex, replica) pairs in place.

        The pairs must form an independent set within each replica (their
        neighbours' colours are read as fixed).  Uniform-available-colour
        rejection sampling *is* the heat-bath conditional for proper
        colourings, so this is the shared update kernel of the LubyGlauber
        step and the region-restricted advance.
        """
        xp = self.xp
        result = xp.copy(self._config)
        guard = 0
        while int(v_idx.shape[0]):
            pending = int(v_idx.shape[0])
            draws = xp.uniform_spins(self.rng, self.q, pending, self._dtype)
            if self._m:
                # Expand each pending pair to its CSR neighbour slots.  The
                # neighbours of a selected vertex are unselected (Luby step),
                # so their colours are fixed for the whole resampling pass.
                pair_of_slot, slots = xp.expand_neighbour_slots(
                    v_idx, self._degrees_d, self._indptr_d
                )
                neighbour_spins = self._config[
                    self._csr_indices_d[slots],
                    xp.repeat(r_idx, self._degrees_d[v_idx]),
                ]
                hits = neighbour_spins == draws[pair_of_slot]
                conflict = xp.bincount(pair_of_slot[hits], minlength=pending) > 0
            else:
                conflict = xp.zeros(pending, dtype=bool)
            ok = ~conflict
            result[v_idx[ok], r_idx[ok]] = draws[ok]
            # Carry only the conflicted pairs into the next rejection round —
            # the work per round decays geometrically with the pending set.
            v_idx, r_idx = v_idx[conflict], r_idx[conflict]
            guard += 1
            if guard > 200 * self.q:
                raise ModelError(
                    "rejection sampling stalled: some vertex has no available "
                    "colour (needs q >= Delta + 1)"
                )
        self._config = result

    def advance_region(self, steps: int, region) -> _EnsembleColoringBase:
        """Advance only ``region`` for ``steps`` rounds, boundary clamped.

        Every round Luby-selects an independent set among the region
        vertices (over region-internal edges only) and heat-bath-resamples
        it; vertices outside the region never change, and their colours
        enter the update as fixed boundary conditions through the full CSR
        neighbour gathers.  Used by :mod:`repro.dynamic` for incremental
        resampling after a graph mutation.  Note the kernel is the
        heat-bath (LubyGlauber) one for *both* colouring engines — a
        clamped LocalMetropolis round has no stationarity guarantee.
        """
        if steps < 0:
            raise ModelError(f"advance_region needs steps >= 0, got {steps}")
        selector = _RegionSelector(
            self.xp, _as_region(region, self.n), self._eu, self._ev, self.n
        )
        for _ in range(steps):
            self._resample_pairs(*selector.select_pairs(self.rng, self.replicas))
            self.steps_taken += 1
        return self


class EnsembleLocalMetropolisColoring(_EnsembleColoringBase):
    """Batched Algorithm 2 for proper q-colourings.

    One step advances all R replicas by one LocalMetropolis round: every
    (replica, vertex) pair proposes a uniform colour, every (replica, edge)
    pair applies the three deterministic filtering rules of Section 4.2,
    and a vertex accepts iff none of its incident edges failed.
    """

    def step(self) -> None:
        xp = self.xp
        proposals = xp.uniform_spins(
            self.rng, self.q, (self.n, self.replicas), self._dtype
        )
        if self._m == 0:
            self._config = proposals
            self.steps_taken += 1
            return
        pu = proposals[self._eu_d]
        pv = proposals[self._ev_d]
        xu = self._config[self._eu_d]
        xv = self._config[self._ev_d]
        failed = (pu == pv) | (pu == xv) | (pv == xu)
        # (n, R) count of failed incident edges; a vertex accepts iff zero.
        blocked = xp.spmm_count(self._incidence, failed) > 0
        if _obs_metrics.enabled:
            _record_metropolis_step(self, blocked)
        self._config = xp.where(blocked, self._config, proposals)
        self.steps_taken += 1


class EnsembleLubyGlauberColoring(_EnsembleColoringBase):
    """Batched Algorithm 1 for proper q-colourings.

    One step advances all R replicas by one LubyGlauber round: each replica
    draws its own Luby independent set, then every selected (replica,
    vertex) pair resamples a uniform *available* colour by vectorised
    rejection.  The rejection pass checks every pending pair against its
    neighbours' current colours through flat CSR neighbour arrays — one
    gather + one segmented reduction per rejection round, no per-vertex
    Python loop — and the amount of work decays geometrically as pairs
    accept.
    """

    def _luby_select(self):
        """Per-replica Luby step on the colouring graph, ``(n, R)`` boolean."""
        return _batched_luby_select(
            self.xp, self.rng, self.n, self.replicas, self._eu_d, self._ev_d,
            self._side_u, self._side_v,
        )

    def step(self) -> None:
        xp = self.xp
        v_idx, r_idx = xp.nonzero_pairs(self._luby_select())
        if _obs_metrics.enabled:
            _record_luby_step(self, v_idx)
        self._resample_pairs(v_idx, r_idx)
        self.steps_taken += 1


class EnsembleGlauberDynamics(EnsembleTrajectoryMixin):
    """Batched single-site heat-bath Glauber for general pairwise MRFs.

    One step advances *each* replica by one single-site update: every
    replica independently picks a uniform vertex and resamples it from the
    conditional marginal of paper eq. (2).  All R conditional weight
    vectors are assembled with padded neighbour arrays (one vectorised pass
    per neighbour position, bounded by the maximum degree) and sampled with
    one vectorised inverse-CDF — no per-replica Python loop.

    With ``replicas=1`` this consumes the RNG stream in exactly the same
    order as :class:`repro.chains.glauber.GlauberDynamics` and reproduces
    it bitwise (same seed, same initial configuration) — the strongest form
    of the ensemble-vs-sequential exactness contract.
    """

    def __init__(
        self,
        mrf: MRF,
        replicas: int,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if replicas < 1:
            raise ModelError(f"ensemble needs replicas >= 1, got {replicas}")
        self.mrf = mrf
        self.replicas = int(replicas)
        self.rng = as_generator(seed)
        self.xp = get_backend(backend)
        n, q, r = mrf.n, mrf.q, self.replicas
        if initial is None:
            base = greedy_feasible_config(mrf, self.rng)
            config = np.repeat(base[None, :], r, axis=0)
        else:
            config = np.asarray(initial, dtype=np.int64)
            if config.shape == (n,):
                config = np.repeat(config[None, :], r, axis=0)
            elif config.shape == (r, n):
                config = config.copy()
            else:
                raise ModelError(
                    f"initial configuration must have shape ({n},) or ({r}, {n}), "
                    f"got {config.shape}"
                )
            if np.any(config < 0) or np.any(config >= q):
                raise ModelError(f"initial spins must lie in 0..{q - 1}")
        self._config = self.xp.asarray(config.astype(np.int64))
        # Padded neighbour table (-1 pad) plus a per-slot index into the
        # deduplicated stack of edge-activity matrices, so heterogeneous
        # models cost no more than shared-matrix ones.
        max_degree = mrf.max_degree
        self._neighbour_pad = np.full((n, max(max_degree, 1)), -1, dtype=np.int64)
        self._activity_index = np.zeros((n, max(max_degree, 1)), dtype=np.int64)
        matrices: list[np.ndarray] = []
        matrix_ids: dict[int, int] = {}
        for v in range(n):
            for k, u in enumerate(mrf.neighbors(v)):
                matrix = mrf.edge_activity(u, v)
                key = id(matrix)
                if key not in matrix_ids:
                    matrix_ids[key] = len(matrices)
                    matrices.append(np.asarray(matrix, dtype=float))
                self._neighbour_pad[v, k] = u
                self._activity_index[v, k] = matrix_ids[key]
        activities = np.stack(matrices) if matrices else np.ones((1, q, q))
        xp = self.xp
        self._neighbour_pad_d = xp.asarray(self._neighbour_pad)
        self._activity_index_d = xp.asarray(self._activity_index)
        self._activities = xp.asarray(activities)
        self._vertex_activity = xp.asarray(
            np.asarray(mrf.vertex_activity, dtype=float)
        )
        self._rows = xp.arange(r)
        self.steps_taken = 0

    @property
    def config(self) -> np.ndarray:
        """The current ``(R, n)`` batch (a numpy copy — safe to mutate)."""
        return np.array(self.xp.to_numpy(self._config))

    def step(self) -> None:
        """One single-site heat-bath update in every replica."""
        vertices = self.xp.integers(self.rng, self.mrf.n, self.replicas)
        if _obs_metrics.enabled:
            _obs_metrics.inc(
                "repro_engine_site_updates_total", self.replicas, engine=type(self).__name__
            )
        self._update_sites(vertices)
        self.steps_taken += 1

    def advance_region(self, steps: int, region) -> EnsembleGlauberDynamics:
        """Advance only ``region`` for ``steps`` rounds, boundary clamped.

        Each round every replica heat-bath-updates one uniformly chosen
        *region* vertex; the complement never changes and enters the
        conditional weights as fixed boundary spins.  Used by
        :mod:`repro.dynamic` for incremental resampling.
        """
        if steps < 0:
            raise ModelError(f"advance_region needs steps >= 0, got {steps}")
        xp = self.xp
        region = _as_region(region, self.mrf.n)
        region_d = xp.asarray(region)
        for _ in range(steps):
            picks = xp.integers(self.rng, int(region.size), self.replicas)
            self._update_sites(region_d[picks])
            self.steps_taken += 1
        return self

    def _update_sites(self, vertices) -> None:
        """Heat-bath-resample ``vertices[i]`` in replica ``i``, in place."""
        xp = self.xp
        r, q = self.replicas, self.mrf.q
        # Conditional weights b_v(c) * prod_u A_uv(c, X_u), eq. (2), built
        # in ascending-neighbour order (bitwise-matching the sequential
        # implementation's float operation order).
        weights = xp.take_rows(self._vertex_activity, vertices)
        rows = self._rows
        for k in range(self._neighbour_pad.shape[1]):
            neighbour = self._neighbour_pad_d[vertices, k]
            valid = neighbour >= 0
            if not xp.any(valid):
                continue
            spins = self._config[rows[valid], neighbour[valid]]
            weights[valid] *= self._activities[
                self._activity_index_d[vertices[valid], k], :, spins
            ]
        totals = xp.sum(weights, axis=1)
        if xp.any(totals <= 0.0):
            bad = int(vertices[xp.argmax(totals <= 0.0)])
            raise InfeasibleStateError(
                f"conditional marginal at vertex {bad} is undefined: all {q} "
                "spins have zero weight given the neighbours' spins"
            )
        cdf = xp.cumsum(weights / totals[:, None], axis=1)
        uniforms = xp.random(self.rng, r)
        spins = xp.sum(cdf <= uniforms[:, None], axis=1)
        spins = xp.clip(spins, 0, q - 1)
        self._config[rows, vertices] = spins

    def is_feasible(self) -> np.ndarray:
        """Per-replica feasibility mask, shape ``(R,)``."""
        config = self.xp.to_numpy(self._config)
        return np.array(
            [self.mrf.is_feasible(config[i]) for i in range(self.replicas)]
        )


class EnsembleLubyGlauberMRF(EnsembleTrajectoryMixin):
    """Batched Algorithm 1 (LubyGlauber) for *general* pairwise MRFs.

    The general-model sibling of :class:`EnsembleLubyGlauberColoring`:
    where the colouring engine rejection-samples uniform available
    colours, this engine heat-bath-resamples every selected (replica,
    vertex) pair from its exact conditional marginal (paper eq. (2)), so
    it covers hardcore, Ising and *list-colouring* models — any pairwise
    MRF — with one batched kernel.

    One step advances all R replicas by one LubyGlauber round: each
    replica draws its own Luby independent set, then the conditional
    weight vectors of *all* selected pairs are assembled at once — the
    CSR neighbour arrays expand each pair to its neighbour slots, one
    gather pulls the neighbours' current spins, a second gather pulls the
    matching columns of the deduplicated edge-activity stack, and a
    segmented product reduces slots back to per-pair ``(q,)`` weight
    vectors.  Sampling is one vectorised inverse-CDF, with the same
    largest-positive-mass fallthrough rule as the CSP engine.

    Each replica evolves by exactly the same Markov kernel as the
    sequential :class:`~repro.chains.luby_glauber.LubyGlauberChain` (same
    Luby selection law, same heat-bath conditional), so the ensemble is
    distributionally identical to independent sequential runs.
    """

    def __init__(
        self,
        mrf: MRF,
        replicas: int,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if replicas < 1:
            raise ModelError(f"ensemble needs replicas >= 1, got {replicas}")
        self.mrf = mrf
        self.n = mrf.n
        self.q = mrf.q
        self.replicas = int(replicas)
        self._dtype = _spin_dtype(self.q)
        self.rng = as_generator(seed)
        self.xp = get_backend(backend)
        xp = self.xp
        n = self.n
        self._eu, self._ev = sorted_edge_arrays(mrf.graph)
        self._m = len(self._eu)
        self._degrees, self._indptr, self._csr_indices = build_csr_neighbours(
            self._eu, self._ev, n
        )
        self._degrees_d = xp.asarray(self._degrees)
        self._indptr_d = xp.asarray(self._indptr)
        self._csr_indices_d = xp.asarray(self._csr_indices)
        self._eu_d = xp.asarray(self._eu)
        self._ev_d = xp.asarray(self._ev)
        if self._m:
            ones = np.ones(self._m, dtype=np.int32)
            arange = np.arange(self._m)
            self._side_u = xp.csr(
                sp.csr_matrix((ones, (self._eu, arange)), shape=(n, self._m))
            )
            self._side_v = xp.csr(
                sp.csr_matrix((ones, (self._ev, arange)), shape=(n, self._m))
            )
        else:
            self._side_u = self._side_v = None
        # CSR-slot-aligned deduplicated edge-activity stack: the slot
        # ``indptr[v] + k`` (neighbour u = csr_indices[indptr[v] + k])
        # holds the index of A_{uv} inside the stack, so heterogeneous
        # models cost no more than shared-matrix ones.  Undirected edge
        # matrices are symmetric, so gathering column ``X_u`` equals the
        # row gather the sequential chain performs.
        matrices: list[np.ndarray] = []
        matrix_ids: dict[int, int] = {}
        slot_activity = np.zeros(max(len(self._csr_indices), 1), dtype=np.int64)
        for v in range(n):
            for k in range(int(self._degrees[v])):
                slot = int(self._indptr[v]) + k
                u = int(self._csr_indices[slot])
                matrix = mrf.edge_activity(u, v)
                key = id(matrix)
                if key not in matrix_ids:
                    matrix_ids[key] = len(matrices)
                    matrices.append(np.asarray(matrix, dtype=float))
                slot_activity[slot] = matrix_ids[key]
        activities = np.stack(matrices) if matrices else np.ones((1, self.q, self.q))
        self._slot_activity_d = xp.asarray(slot_activity)
        self._activities = xp.asarray(activities)
        self._vertex_activity_d = xp.asarray(
            np.asarray(mrf.vertex_activity, dtype=float)
        )
        self._config = xp.asarray(
            _initial_spin_batch(
                initial,
                n,
                self.q,
                self.replicas,
                self._dtype,
                lambda: greedy_feasible_config(mrf, self.rng),
                noun="spins",
            )
        )
        self.steps_taken = 0

    # ------------------------------------------------------------------
    # batch views and diagnostics
    # ------------------------------------------------------------------
    @property
    def config(self) -> np.ndarray:
        """The current ``(R, n)`` batch (an int64 numpy copy — safe to mutate)."""
        return self.xp.to_numpy(self._config).T.astype(np.int64)

    def write_batch_into(self, out: np.ndarray) -> np.ndarray:
        """Transposed write from the internal vertex-major state, no copy."""
        np.copyto(out, self.xp.to_numpy(self._config).T)
        return out

    def is_feasible(self) -> np.ndarray:
        """Per-replica feasibility mask, shape ``(R,)``."""
        config = self.xp.to_numpy(self._config).T
        return np.array(
            [self.mrf.is_feasible(config[i]) for i in range(self.replicas)]
        )

    def _luby_select(self):
        """Per-replica Luby step on the model graph, ``(n, R)`` boolean."""
        return _batched_luby_select(
            self.xp, self.rng, self.n, self.replicas, self._eu_d, self._ev_d,
            self._side_u, self._side_v,
        )

    def step(self) -> None:
        """Select independent sets; heat-bath-update all pairs in parallel."""
        v_idx, r_idx = self.xp.nonzero_pairs(self._luby_select())
        if _obs_metrics.enabled:
            _record_luby_step(self, v_idx)
        self._heatbath_update(v_idx, r_idx)
        self.steps_taken += 1

    def advance_region(self, steps: int, region) -> EnsembleLubyGlauberMRF:
        """Advance only ``region`` for ``steps`` rounds, boundary clamped.

        Every round Luby-selects an independent set among the region
        vertices (over region-internal edges only) and heat-bath-resamples
        it from the exact conditional marginals; vertices outside the
        region never change and enter the weights as fixed boundary spins
        through the full CSR neighbour gathers.  Used by
        :mod:`repro.dynamic` for incremental resampling.
        """
        if steps < 0:
            raise ModelError(f"advance_region needs steps >= 0, got {steps}")
        selector = _RegionSelector(
            self.xp, _as_region(region, self.n), self._eu, self._ev, self.n
        )
        for _ in range(steps):
            self._heatbath_update(*selector.select_pairs(self.rng, self.replicas))
            self.steps_taken += 1
        return self

    def _heatbath_update(self, v_idx, r_idx) -> None:
        """Heat-bath-resample the given (vertex, replica) pairs in place.

        The pairs must form an independent set within each replica (their
        neighbours' spins are read as fixed conditioning).
        """
        xp = self.xp
        pairs = int(v_idx.shape[0])
        if pairs == 0:  # pragma: no cover - Luby always selects someone
            return
        q = self.q
        # Conditional weights b_v(c) * prod_u A_uv(c, X_u), eq. (2).  The
        # neighbours of a selected vertex are unselected (Luby step), so
        # their spins are fixed for the whole update.
        weights = xp.take_rows(self._vertex_activity_d, v_idx)
        if self._m:
            pair_of_slot, slots = xp.expand_neighbour_slots(
                v_idx, self._degrees_d, self._indptr_d
            )
            neighbour_spins = self._config[
                self._csr_indices_d[slots],
                xp.repeat(r_idx, self._degrees_d[v_idx]),
            ]
            values = self._activities[
                self._slot_activity_d[slots], :, xp.astype(neighbour_spins, np.int64)
            ]
            weights = weights * xp.segment_prod(
                values, self._degrees[xp.to_numpy(v_idx)]
            )
        totals = xp.sum(weights, axis=1)
        if xp.any(totals <= 0.0):
            bad = int(v_idx[xp.argmax(totals <= 0.0)])
            raise InfeasibleStateError(
                f"conditional marginal at vertex {bad} is undefined: all {q} "
                "spins have zero weight given the neighbours' spins"
            )
        cdf = xp.cumsum(weights / totals[:, None], axis=1)
        uniforms = xp.random(self.rng, pairs)
        spins = xp.sum(cdf <= uniforms[:, None], axis=1)
        # Rounding can leave cdf[-1] < 1 so a draw lands past the end; fall
        # back to the *largest positive-mass* spin, never a zero-mass one
        # (same fallthrough rule as the CSP engine and cftp._inverse_cdf_spin).
        last_positive = q - 1 - xp.argmax_axis(xp.flip(weights, axis=1) > 0.0, axis=1)
        spins = xp.minimum(spins, last_positive)
        self._config[v_idx, r_idx] = xp.astype(spins, self._dtype)


# ----------------------------------------------------------------------
# CSP ensembles: batched extensions of Algorithms 1-2 to weighted local
# CSPs (the remarks after both algorithms).
# ----------------------------------------------------------------------
class _EnsembleCSPBase(EnsembleTrajectoryMixin):
    """Shared precompiled structure for the batched CSP chains.

    Constraint tables are concatenated into one flat array addressed by
    per-constraint offsets and row-major scope strides; a sparse
    ``(C, n)`` stride matrix turns the whole ``(n, R)`` spin batch into the
    ``(C, R)`` array of flat scope indices with a single sparse matmul.
    Both kernels are built from that primitive: any mixing of two spin
    batches over every scope is two sparse matmuls plus one flat gather.

    Parameters
    ----------
    csp:
        The weighted local CSP.
    replicas:
        Number of independent replicas R advanced per step.
    initial:
        ``None`` (the deterministic greedy configuration of
        :func:`repro.chains.csp_chains.greedy_csp_config` replicated to all
        replicas), a length-n configuration shared by all replicas, or an
        ``(R, n)`` batch giving each replica its own start.
    seed:
        Seed, :class:`numpy.random.SeedSequence` or Generator for the single
        shared RNG stream (module docstring: seed and stream contract).
    backend:
        Array backend name or instance (module docstring: array-backend
        contract); ``None`` resolves via ``$REPRO_BACKEND``, then numpy.
    """

    def __init__(
        self,
        csp: LocalCSP,
        replicas: int,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if replicas < 1:
            raise ModelError(f"ensemble needs replicas >= 1, got {replicas}")
        self.csp = csp
        self.n = csp.n
        self.q = csp.q
        self.replicas = int(replicas)
        self._dtype = _spin_dtype(self.q)
        self.rng = as_generator(seed)
        self.xp = get_backend(backend)
        self._build_scope_tables()
        self._config = self.xp.asarray(self._initial_batch(initial))
        self._spin_arange = self.xp.arange(self.q)
        self._heatbath_ready = False
        self.steps_taken = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_scope_tables(self) -> None:
        """Flatten all constraint tables and precompile the scope strides."""
        csp, n, xp = self.csp, self.n, self.xp
        constraints = csp.constraints
        self._num_constraints = len(constraints)
        raw_parts: list[np.ndarray] = []
        starts = np.zeros(self._num_constraints, dtype=np.int64)
        self._strides: list[np.ndarray] = []
        offset = 0
        rows: list[int] = []
        cols: list[int] = []
        data: list[int] = []
        for index, constraint in enumerate(constraints):
            table = np.asarray(constraint.table, dtype=float).ravel()
            starts[index] = offset
            raw_parts.append(table)
            offset += table.size
            arity = constraint.arity
            strides = self.q ** np.arange(arity - 1, -1, -1, dtype=np.int64)
            self._strides.append(strides)
            rows.extend([index] * arity)
            cols.extend(constraint.scope)
            data.extend(int(s) for s in strides)
        self._table_starts = starts
        self._table_starts_d = xp.asarray(starts)
        flat_raw = (
            np.concatenate(raw_parts) if raw_parts else np.zeros(0, dtype=float)
        )
        self._flat_raw = flat_raw
        self._flat_raw_d = xp.asarray(flat_raw)
        if self._num_constraints:
            self._scope_matrix = xp.csr(
                sp.csr_matrix(
                    (np.asarray(data, dtype=np.int64), (rows, cols)),
                    shape=(self._num_constraints, n),
                )
            )
            ones = np.ones(len(rows), dtype=np.int32)
            self._vertex_incidence = xp.csr(
                sp.csr_matrix(
                    (ones, (cols, rows)), shape=(n, self._num_constraints)
                )
            )
        else:
            self._scope_matrix = self._vertex_incidence = None

    def _initial_batch(self, initial) -> np.ndarray:
        return _initial_spin_batch(
            initial,
            self.n,
            self.q,
            self.replicas,
            self._dtype,
            lambda: greedy_csp_config(self.csp),
        )

    # ------------------------------------------------------------------
    # batch views and diagnostics
    # ------------------------------------------------------------------
    @property
    def config(self) -> np.ndarray:
        """The current ``(R, n)`` batch (an int64 numpy copy — safe to mutate)."""
        return self.xp.to_numpy(self._config).T.astype(np.int64)

    def write_batch_into(self, out: np.ndarray) -> np.ndarray:
        """Transposed write from the internal vertex-major state, no copy."""
        np.copyto(out, self.xp.to_numpy(self._config).T)
        return out

    def _scope_flat_indices(self, batch):
        """Flat row-major index of every scope restriction, shape ``(C, R)``.

        ``result[c, i]`` addresses ``f_c(batch|_{S_c})`` for replica ``i``
        inside the flattened table stack (relative to the constraint's
        table start).
        """
        return self.xp.spmm_int(self._scope_matrix, batch)

    def feasible_mask(self) -> np.ndarray:
        """Boolean ``(R,)`` mask of replicas with positive total weight."""
        if not self._num_constraints:
            return np.ones(self.replicas, dtype=bool)
        xp = self.xp
        flat = self._scope_flat_indices(self._config)
        values = self._flat_raw_d[self._table_starts_d[:, None] + flat]
        return np.all(xp.to_numpy(values) > 0.0, axis=0)

    def is_feasible(self) -> bool:
        """Return True iff *every* replica's configuration is feasible."""
        return bool(self.feasible_mask().all())

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------
    # heat-bath machinery (LubyGlauber step and region-restricted advance)
    # ------------------------------------------------------------------
    def _ensure_heatbath_structures(self) -> None:
        """Conflict-graph edge arrays plus the (constraint, stride) incidence.

        Built eagerly by :class:`EnsembleLubyGlauberCSP` (its every step
        needs them) and lazily by the region-restricted advance on
        :class:`EnsembleLocalMetropolisCSP` (which otherwise never pays
        for them).
        """
        if self._heatbath_ready:
            return
        xp, csp = self.xp, self.csp
        # Conflict-graph edge arrays drive the batched Luby step; ties lose
        # on both sides, exactly as LubyScheduler's strict local maxima.
        self._cu, self._cv = sorted_edge_arrays(conflict_graph(csp))
        self._conflict_m = len(self._cu)
        self._cu_d = xp.asarray(self._cu)
        self._cv_d = xp.asarray(self._cv)
        if self._conflict_m:
            ones = np.ones(self._conflict_m, dtype=np.int32)
            arange = np.arange(self._conflict_m)
            self._conflict_u = xp.csr(
                sp.csr_matrix(
                    (ones, (self._cu, arange)), shape=(self.n, self._conflict_m)
                )
            )
            self._conflict_v = xp.csr(
                sp.csr_matrix(
                    (ones, (self._cv, arange)), shape=(self.n, self._conflict_m)
                )
            )
        else:
            self._conflict_u = self._conflict_v = None
        # Vertex -> (constraint, stride-of-vertex) incidence CSR: the slots
        # of vertex v enumerate the constraints containing v together with
        # the stride of v's axis in each table.
        inc_constraint: list[int] = []
        inc_stride: list[int] = []
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        for v in range(self.n):
            for index in csp.incident[v]:
                position = csp.constraints[index].scope.index(v)
                inc_constraint.append(index)
                inc_stride.append(int(self._strides[index][position]))
            indptr[v + 1] = len(inc_constraint)
        self._inc_indptr = indptr
        self._inc_degrees = np.diff(indptr)
        self._inc_indptr_d = xp.asarray(indptr)
        self._inc_degrees_d = xp.asarray(self._inc_degrees)
        self._inc_constraint = xp.asarray(np.asarray(inc_constraint, dtype=np.int64))
        self._inc_stride = xp.asarray(np.asarray(inc_stride, dtype=np.int64))
        self._heatbath_ready = True

    def _heatbath_update(self, v_idx, r_idx) -> None:
        """Heat-bath-resample the given (vertex, replica) pairs in place.

        The pairs must be strongly independent within each replica (no two
        share a constraint scope), so every co-scoped vertex is fixed
        conditioning.  Requires :meth:`_ensure_heatbath_structures`.
        """
        xp = self.xp
        pairs = int(v_idx.shape[0])
        if pairs == 0:  # pragma: no cover - Luby always selects someone
            return
        q = self.q
        if self._num_constraints:
            config64 = xp.astype(self._config, np.int64)
            flat = self._scope_flat_indices(self._config)
            # Expand each selected pair to its constraint-incidence slots.
            # Selected vertices are strongly independent, so every co-scoped
            # vertex is unselected and its spin is fixed this round.
            pair_of_slot, slots = xp.expand_neighbour_slots(
                v_idx, self._inc_degrees_d, self._inc_indptr_d
            )
            constraint = self._inc_constraint[slots]
            stride = self._inc_stride[slots]
            r_slot = r_idx[pair_of_slot]
            current = config64[v_idx[pair_of_slot], r_slot]
            base = (
                self._table_starts_d[constraint]
                + flat[constraint, r_slot]
                - current * stride
            )
            # (slots, q) factor values for every candidate spin of the pair.
            values = self._flat_raw_d[
                base[:, None] + stride[:, None] * self._spin_arange
            ]
            weights = xp.segment_prod(
                values, self._inc_degrees[xp.to_numpy(v_idx)]
            )
        else:
            weights = xp.ones((pairs, q))
        totals = xp.sum(weights, axis=1)
        if xp.any(totals <= 0.0):
            bad = int(v_idx[xp.argmax(totals <= 0.0)])
            raise ModelError(
                f"CSP conditional marginal at vertex {bad} is undefined (zero mass)"
            )
        cdf = xp.cumsum(weights / totals[:, None], axis=1)
        uniforms = xp.random(self.rng, pairs)
        spins = xp.sum(cdf <= uniforms[:, None], axis=1)
        # Rounding can leave cdf[-1] < 1 so a draw lands past the end; fall
        # back to the *largest positive-mass* spin, never a zero-mass one
        # (same fallthrough rule as cftp._inverse_cdf_spin).
        last_positive = q - 1 - xp.argmax_axis(xp.flip(weights, axis=1) > 0.0, axis=1)
        spins = xp.minimum(spins, last_positive)
        self._config[v_idx, r_idx] = xp.astype(spins, self._dtype)

    def advance_region(self, steps: int, region) -> _EnsembleCSPBase:
        """Advance only ``region`` for ``steps`` rounds, boundary clamped.

        Every round Luby-selects a strongly independent set among the
        region vertices (over region-internal *conflict-graph* edges) and
        heat-bath-resamples it; vertices outside the region never change
        and enter the marginals as fixed conditioning.  Used by
        :mod:`repro.dynamic` for incremental resampling after a constraint
        mutation.  Note the kernel is the heat-bath (LubyGlauber) one for
        *both* CSP engines — a clamped LocalMetropolis round has no
        stationarity guarantee.
        """
        if steps < 0:
            raise ModelError(f"advance_region needs steps >= 0, got {steps}")
        self._ensure_heatbath_structures()
        selector = _RegionSelector(
            self.xp, _as_region(region, self.n), self._cu, self._cv, self.n
        )
        for _ in range(steps):
            self._heatbath_update(*selector.select_pairs(self.rng, self.replicas))
            self.steps_taken += 1
        return self


class EnsembleLubyGlauberCSP(_EnsembleCSPBase):
    """Batched LubyGlauber on a weighted local CSP (remark after Algorithm 1).

    One step advances all R replicas by one round: each replica draws its
    own Luby independent set *of the CSP's conflict graph* (so the selected
    set is strongly independent in the constraint hypergraph), then every
    selected (replica, vertex) pair heat-bath-resamples from its
    conditional marginal.  The marginal weights of *all* selected pairs are
    assembled at once: the vertex-to-(constraint, stride) incidence CSR
    expands each pair to its constraint slots, one flat gather pulls the
    ``q`` candidate factor values per slot, and a segmented product reduces
    slots back to per-pair weight vectors — no per-vertex Python loop.
    """

    def __init__(
        self,
        csp: LocalCSP,
        replicas: int,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        super().__init__(csp, replicas, initial=initial, seed=seed, backend=backend)
        # Every step Luby-selects on the conflict graph and heat-bath
        # updates through the incidence CSRs — build them eagerly.
        self._ensure_heatbath_structures()

    def _luby_select(self):
        """Per-replica Luby step on the conflict graph, ``(n, R)`` boolean."""
        return _batched_luby_select(
            self.xp, self.rng, self.n, self.replicas, self._cu_d, self._cv_d,
            self._conflict_u, self._conflict_v,
        )

    def step(self) -> None:
        """Select strongly independent sets; heat-bath-update them in parallel."""
        v_idx, r_idx = self.xp.nonzero_pairs(self._luby_select())
        if _obs_metrics.enabled:
            _record_luby_step(self, v_idx)
        self._heatbath_update(v_idx, r_idx)
        self.steps_taken += 1


class EnsembleLocalMetropolisCSP(_EnsembleCSPBase):
    """Batched LocalMetropolis on a weighted local CSP (remark after Algorithm 2).

    One step advances all R replicas by one round: every (replica, vertex)
    pair proposes a uniform spin; every constraint of arity ``k`` passes
    with probability equal to the product of its ``2^k - 1`` normalised
    factors over the mixings of the proposal vector with the current vector
    on its scope; a vertex accepts iff every incident constraint passed.

    The mixing enumeration is *precompiled*: every (constraint, mixing)
    pair becomes one row of two sparse stride matrices — one selecting the
    proposal spins, one the current spins — so all factor lookups of a
    round are two sparse matmuls, one flat gather, and one segmented
    product over rows.  The per-constraint coins are shared across the
    scope exactly as in the sequential chain.
    """

    #: Hard cap on precompiled (constraint, mixing) rows — the filter
    #: enumerates 2^arity - 1 mixings per constraint, so very-high-arity
    #: CSPs must use the sequential chain instead.
    MAX_MIXING_ROWS = 1_000_000

    def __init__(
        self,
        csp: LocalCSP,
        replicas: int,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        super().__init__(csp, replicas, initial=initial, seed=seed, backend=backend)
        xp = self.xp
        norm_parts = [
            np.asarray(c.normalized_table(), dtype=float).ravel()
            for c in csp.constraints
        ]
        flat_norm = (
            np.concatenate(norm_parts) if norm_parts else np.zeros(0, dtype=float)
        )
        self._flat_norm = xp.asarray(flat_norm)
        total_rows = sum(2**c.arity - 1 for c in csp.constraints)
        if total_rows > self.MAX_MIXING_ROWS:
            raise StateSpaceTooLargeError(
                f"LocalMetropolis mixing filter needs {total_rows} precompiled "
                f"rows (2^arity - 1 per constraint), over the "
                f"{self.MAX_MIXING_ROWS} cap; use the sequential "
                "LocalMetropolisCSP chain for very-high-arity CSPs"
            )
        rows_p: list[int] = []
        cols_p: list[int] = []
        data_p: list[int] = []
        rows_c: list[int] = []
        cols_c: list[int] = []
        data_c: list[int] = []
        row_start: list[int] = []
        mask_starts = np.zeros(max(self._num_constraints, 1), dtype=np.int64)
        row = 0
        for index, constraint in enumerate(csp.constraints):
            mask_starts[index] = row
            scope = constraint.scope
            strides = self._strides[index]
            for mask in range(1, 2**constraint.arity):
                for position, vertex in enumerate(scope):
                    if (mask >> position) & 1:
                        rows_p.append(row)
                        cols_p.append(vertex)
                        data_p.append(int(strides[position]))
                    else:
                        rows_c.append(row)
                        cols_c.append(vertex)
                        data_c.append(int(strides[position]))
                row_start.append(int(self._table_starts[index]))
                row += 1
        self._mask_rows = row
        self._mask_starts = mask_starts[: self._num_constraints]
        # Segment sizes of the per-constraint mixing-row blocks (each is
        # 2^arity - 1 >= 1, so every segment is non-empty).
        self._mask_sizes = np.diff(np.append(self._mask_starts, self._mask_rows))
        self._row_table_start = xp.asarray(np.asarray(row_start, dtype=np.int64))
        if self._num_constraints:
            shape = (self._mask_rows, self.n)
            self._proposal_matrix = xp.csr(
                sp.csr_matrix(
                    (np.asarray(data_p, dtype=np.int64), (rows_p, cols_p)),
                    shape=shape,
                )
            )
            self._current_matrix = xp.csr(
                sp.csr_matrix(
                    (np.asarray(data_c, dtype=np.int64), (rows_c, cols_c)),
                    shape=shape,
                )
            )
        else:
            self._proposal_matrix = self._current_matrix = None

    def step(self) -> None:
        """Uniform proposals; batched 2^k - 1-factor filter; accept if clean."""
        xp = self.xp
        proposals = xp.uniform_spins(
            self.rng, self.q, (self.n, self.replicas), self._dtype
        )
        if not self._num_constraints:
            self._config = proposals
            self.steps_taken += 1
            return
        # Flat table index of every (constraint, mixing) row: proposal spins
        # where the mixing reads the proposal, current spins elsewhere.
        flat = xp.spmm_int(self._proposal_matrix, proposals) + xp.spmm_int(
            self._current_matrix, self._config
        )
        factors = self._flat_norm[self._row_table_start[:, None] + flat]
        pass_probability = xp.segment_prod(factors, self._mask_sizes)
        # One shared coin per (constraint, replica): u < p is almost surely
        # true at p = 1 and never true at p = 0, so the deterministic
        # branches of the sequential chain need no special-casing.
        coins = xp.random(self.rng, (self._num_constraints, self.replicas))
        failed = coins >= pass_probability
        blocked = xp.spmm_count(self._vertex_incidence, failed) > 0
        if _obs_metrics.enabled:
            _record_metropolis_step(self, blocked)
        self._config = xp.where(blocked, self._config, proposals)
        self.steps_taken += 1
