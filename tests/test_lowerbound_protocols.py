"""Tests for protocol-independence certificates (Theorem 5.1 machinery)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.graphs import path_graph
from repro.lowerbound import (
    independence_defect,
    path_protocol_lower_bound,
    product_tv_lower_bound,
    tv_to_independent_coupling,
)
from repro.lowerbound.correlation import path_pair_joint
from repro.mrf import proper_coloring_mrf


class TestIndependenceDefect:
    def test_zero_for_products(self):
        p = np.array([0.3, 0.7])
        q = np.array([0.6, 0.4])
        assert independence_defect(np.outer(p, q)) == pytest.approx(0.0, abs=1e-12)

    def test_maximal_for_perfectly_correlated(self):
        joint = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert independence_defect(joint) == pytest.approx(0.25)

    def test_bound_ordering(self):
        """defect/3 <= min-product TV <= TV to the marginal product."""
        joint = np.array([[0.4, 0.1], [0.1, 0.4]])
        lower = product_tv_lower_bound(joint)
        upper = tv_to_independent_coupling(joint)
        assert 0.0 < lower <= upper

    def test_validation(self):
        with pytest.raises(ModelError):
            independence_defect(np.ones((2, 2)))  # sums to 4
        with pytest.raises(ModelError):
            independence_defect(np.array([0.5, 0.5]))  # 1-d

    def test_gibbs_pair_has_positive_defect(self):
        """Adjacent-ish vertices on a path are genuinely correlated."""
        mrf = proper_coloring_mrf(path_graph(20), 3)
        joint = path_pair_joint(mrf, 5, 8)
        assert independence_defect(joint) > 1e-4


class TestPathCertificate:
    def test_structure(self):
        cert = path_protocol_lower_bound(n=100, q=3, t=1)
        assert cert.block == 9
        assert len(cert.pairs) == (100 - 1) // 9
        for (u, v), defect in zip(cert.pairs, cert.pair_defects):
            assert v - u == 2 * cert.t + 1  # pair distance > 2t
            assert defect > 0.0

    def test_lower_bound_grows_with_n(self):
        """More blocks, more independent pairs, higher combined TV cost —
        the paper's amplification (inequality (30))."""
        small = path_protocol_lower_bound(n=40, q=3, t=1).combined_lower_bound
        large = path_protocol_lower_bound(n=400, q=3, t=1).combined_lower_bound
        assert large > small

    def test_lower_bound_decays_with_t(self):
        """Bigger round budgets weaken the per-pair correlation (eta^(2t+1))."""
        t1 = path_protocol_lower_bound(n=600, q=3, t=1)
        t3 = path_protocol_lower_bound(n=600, q=3, t=3)
        assert max(t1.pair_lower_bounds) > max(t3.pair_lower_bounds)

    def test_log_n_scaling_shape(self):
        """For t ~ c log n with small c, the bound stays bounded away from 0
        as n grows — the Omega(log n) statement's empirical shadow."""
        import math

        bounds = []
        for n in (200, 400, 800):
            t = max(1, int(0.15 * math.log(n)))
            bounds.append(path_protocol_lower_bound(n=n, q=3, t=t).combined_lower_bound)
        assert min(bounds) > 0.05

    def test_validation(self):
        with pytest.raises(ModelError):
            path_protocol_lower_bound(n=5, q=3, t=2)  # too short for one block
        with pytest.raises(ModelError):
            path_protocol_lower_bound(n=100, q=2, t=1)
        with pytest.raises(ModelError):
            path_protocol_lower_bound(n=100, q=3, t=-1)
