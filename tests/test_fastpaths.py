"""Tests validating the vectorised colouring chains against the generic ones."""

import numpy as np
import pytest

from repro.analysis import empirical_distribution
from repro.chains import LocalMetropolisChain, LubyGlauberChain
from repro.chains.fastpaths import FastLocalMetropolisColoring, FastLubyGlauberColoring
from repro.errors import ModelError
from repro.graphs import cycle_graph, grid_graph, is_independent_set, path_graph, torus_graph
from repro.mrf import exact_gibbs_distribution, proper_coloring_mrf


class TestConstruction:
    def test_greedy_initial_proper(self):
        chain = FastLocalMetropolisColoring(grid_graph(6, 6), 8, seed=0)
        assert chain.is_proper()

    def test_initial_validation(self):
        with pytest.raises(ModelError):
            FastLocalMetropolisColoring(path_graph(3), 3, initial=[0, 1])
        with pytest.raises(ModelError):
            FastLocalMetropolisColoring(path_graph(3), 3, initial=[0, 1, 9])
        with pytest.raises(ModelError):
            FastLocalMetropolisColoring(path_graph(3), 1)

    def test_edgeless_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        chain = FastLocalMetropolisColoring(graph, 3, seed=0)
        chain.run(5)
        assert chain.is_proper()


class TestInvariants:
    def test_lm_never_degrades(self):
        chain = FastLocalMetropolisColoring(
            cycle_graph(40), 6, initial=np.zeros(40, dtype=int), seed=1
        )
        previous = chain.monochromatic_edges()
        for _ in range(80):
            chain.step()
            current = chain.monochromatic_edges()
            assert current <= previous
            previous = current
        assert chain.is_proper()

    def test_lg_changed_set_independent(self):
        graph = grid_graph(6, 6)
        chain = FastLubyGlauberColoring(graph, 9, seed=2)
        for _ in range(40):
            before = chain.config.copy()
            chain.step()
            changed = np.nonzero(before != chain.config)[0]
            assert is_independent_set(graph, changed)

    def test_lg_preserves_propriety(self):
        chain = FastLubyGlauberColoring(torus_graph(6, 6), 9, seed=3)
        assert chain.is_proper()
        chain.run(50)
        assert chain.is_proper()

    def test_lg_rejection_guard(self):
        # q = 2 on C4 from (0, 0, 1, 1): every vertex sees both colours in
        # its neighbourhood, so whoever the Luby step selects has no
        # available colour and the rejection loop must detect the stall.
        chain = FastLubyGlauberColoring(
            cycle_graph(4), 2, initial=np.array([0, 0, 1, 1]), seed=4
        )
        with pytest.raises(ModelError, match="no available"):
            chain.step()


class TestDistributionalAgreement:
    def test_fast_lm_matches_exact_gibbs(self):
        mrf = proper_coloring_mrf(path_graph(3), 4)
        gibbs = exact_gibbs_distribution(mrf)
        chain = FastLocalMetropolisColoring(path_graph(3), 4, seed=5)
        chain.run(30)
        samples = []
        for _ in range(10_000):
            chain.step()
            chain.step()
            samples.append(tuple(int(s) for s in chain.config))
        assert gibbs.tv_distance(empirical_distribution(samples, 3, 4)) < 0.05

    def test_fast_lg_matches_exact_gibbs(self):
        mrf = proper_coloring_mrf(path_graph(3), 4)
        gibbs = exact_gibbs_distribution(mrf)
        chain = FastLubyGlauberColoring(path_graph(3), 4, seed=6)
        chain.run(30)
        samples = []
        for _ in range(10_000):
            chain.step()
            chain.step()
            samples.append(tuple(int(s) for s in chain.config))
        assert gibbs.tv_distance(empirical_distribution(samples, 3, 4)) < 0.05

    @staticmethod
    def _thinned_empirical(chain, samples, thin=2):
        out = []
        for _ in range(samples):
            for _ in range(thin):
                chain.step()
            out.append(tuple(int(s) for s in chain.config))
        return out

    def test_fast_and_generic_lm_agree(self):
        """Same algorithm, two implementations — both reproduce the exact
        edge pair-marginal on C4 q=5 (a low-noise statistic; the full joint
        over 625 states would need far more samples)."""
        from repro.analysis.empirical import pair_counts

        graph = cycle_graph(4)
        mrf = proper_coloring_mrf(graph, 5)
        gibbs = exact_gibbs_distribution(mrf)
        exact_pair = gibbs.pair_marginal(0, 1)
        for chain in (
            FastLocalMetropolisColoring(graph, 5, seed=7),
            LocalMetropolisChain(mrf, seed=8),
        ):
            chain.run(60)
            samples = self._thinned_empirical(chain, 20_000)
            counts = pair_counts(samples, 0, 1, 5)
            empirical_pair = counts / counts.sum()
            tv = 0.5 * float(np.abs(empirical_pair - exact_pair).sum())
            assert tv < 0.05

    def test_fast_and_generic_lg_agree(self):
        graph = cycle_graph(4)
        mrf = proper_coloring_mrf(graph, 3)
        gibbs = exact_gibbs_distribution(mrf)
        fast = FastLubyGlauberColoring(graph, 3, seed=9)
        fast.run(60)
        fast_emp = empirical_distribution(
            self._thinned_empirical(fast, 8000), 4, 3
        )
        generic = LubyGlauberChain(mrf, seed=10)
        generic.run(60)
        generic_emp = empirical_distribution(
            self._thinned_empirical(generic, 8000), 4, 3
        )
        assert gibbs.tv_distance(fast_emp) < 0.06
        assert gibbs.tv_distance(generic_emp) < 0.06


class TestRunReturnsCopy:
    def test_run_result_is_detached_from_chain_state(self):
        """Regression: run() used to return the live config array, so
        callers could silently corrupt the chain state."""
        chain = FastLocalMetropolisColoring(cycle_graph(8), 5, seed=12)
        returned = chain.run(3)
        snapshot = chain.config.copy()
        returned[:] = 0
        assert np.array_equal(chain.config, snapshot)

    def test_luby_run_result_is_detached(self):
        chain = FastLubyGlauberColoring(cycle_graph(8), 5, seed=13)
        returned = chain.run(3)
        snapshot = chain.config.copy()
        returned += 1
        assert np.array_equal(chain.config, snapshot)


class TestScale:
    def test_large_instance_runs(self):
        """10k vertices, a few rounds, still proper — the point of the fast path."""
        chain = FastLocalMetropolisColoring(torus_graph(100, 100), 16, seed=11)
        chain.run(20)
        assert chain.is_proper()
        assert chain.n == 10_000
