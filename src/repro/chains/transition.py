"""Exact transition matrices for the paper's chains on small state spaces.

This module is the reproduction's ground-truth engine for the correctness
theorems (Proposition 3.1 and Theorem 4.1): it materialises the full
``q^n x q^n`` transition matrix of each chain and checks, to numerical
precision, that

* the Gibbs distribution is stationary,
* detailed balance holds (reversibility),
* the chain is absorbing towards feasible configurations, and
* the spectral gap / exact mixing time behave as claimed.

The matrices index configurations lexicographically, matching
:func:`repro.mrf.distribution.config_index`.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.chains.schedulers import IndependentSetScheduler, LubyScheduler
from repro.errors import ConvergenceError, ModelError, StateSpaceTooLargeError
from repro.mrf.distribution import GibbsDistribution, config_index
from repro.mrf.marginals import conditional_marginal
from repro.mrf.model import MRF

__all__ = [
    "glauber_transition_matrix",
    "luby_glauber_transition_matrix",
    "local_metropolis_transition_matrix",
    "chromatic_sweep_matrix",
    "stationary_distribution",
    "is_reversible",
    "spectral_gap",
    "exact_tv_decay",
    "exact_mixing_time",
]

_DEFAULT_MAX_STATES = 4096


def _all_configs(mrf: MRF, max_states: int) -> list[tuple[int, ...]]:
    size = mrf.q ** mrf.n
    if size > max_states:
        raise StateSpaceTooLargeError(
            f"state space {mrf.q}**{mrf.n} = {size} exceeds max_states={max_states}"
        )
    return list(itertools.product(range(mrf.q), repeat=mrf.n))


# ----------------------------------------------------------------------
# single-site Glauber
# ----------------------------------------------------------------------
def glauber_transition_matrix(mrf: MRF, max_states: int = _DEFAULT_MAX_STATES) -> np.ndarray:
    """Exact transition matrix of single-site heat-bath Glauber dynamics.

    ``P(X, Y) = (1/n) * sum_v 1[Y agrees with X off v] * mu_v(Y_v | X_Gamma(v))``.
    """
    configs = _all_configs(mrf, max_states)
    size = len(configs)
    matrix = np.zeros((size, size))
    for row, config in enumerate(configs):
        for v in range(mrf.n):
            distribution = conditional_marginal(mrf, config, v)
            mutable = list(config)
            for spin in range(mrf.q):
                mutable[v] = spin
                column = config_index(mutable, mrf.q)
                matrix[row, column] += distribution[spin] / mrf.n
    return matrix


# ----------------------------------------------------------------------
# LubyGlauber
# ----------------------------------------------------------------------
def _parallel_update_matrix(
    mrf: MRF,
    configs: list[tuple[int, ...]],
    independent_set: frozenset[int],
) -> np.ndarray:
    """Transition matrix of the parallel heat-bath update on a fixed set ``I``.

    ``P_I(X, Y) = prod_{v in I} mu_v(Y_v | X_Gamma(v))`` when ``Y`` agrees
    with ``X`` off ``I``; the product factorises because ``I`` is
    independent, so every conditional reads only un-updated spins.
    """
    size = len(configs)
    matrix = np.zeros((size, size))
    members = sorted(independent_set)
    for row, config in enumerate(configs):
        distributions = [conditional_marginal(mrf, config, v) for v in members]
        mutable = list(config)
        for spins in itertools.product(range(mrf.q), repeat=len(members)):
            probability = 1.0
            for distribution, spin in zip(distributions, spins):
                probability *= distribution[spin]
            if probability == 0.0:
                continue
            for v, spin in zip(members, spins):
                mutable[v] = spin
            column = config_index(mutable, mrf.q)
            matrix[row, column] += probability
            for v in members:
                mutable[v] = config[v]
    return matrix


def luby_glauber_transition_matrix(
    mrf: MRF,
    scheduler: IndependentSetScheduler | None = None,
    max_states: int = _DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Exact LubyGlauber transition matrix ``P = sum_I Pr[I] * P_I``.

    ``scheduler`` defaults to the Luby step, whose exact independent-set
    distribution is obtained by rank-order enumeration.
    """
    configs = _all_configs(mrf, max_states)
    if scheduler is None:
        scheduler = LubyScheduler(mrf.graph)
    support = scheduler.distribution()
    size = len(configs)
    matrix = np.zeros((size, size))
    for independent_set, probability in support:
        if probability == 0.0:
            continue
        matrix += probability * _parallel_update_matrix(mrf, configs, independent_set)
    return matrix


def chromatic_sweep_matrix(
    mrf: MRF,
    classes: list[list[int]],
    max_states: int = _DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Transition matrix of one full chromatic-scheduler sweep.

    The product ``P = P_{C_1} P_{C_2} ... P_{C_k}`` over the colour classes
    in order — the systematic-scan object the paper cites from [17, 18, 28].
    Each sweep preserves mu (each factor does), though the product itself is
    not reversible in general.
    """
    configs = _all_configs(mrf, max_states)
    matrix = np.eye(len(configs))
    for cls in classes:
        matrix = matrix @ _parallel_update_matrix(mrf, configs, frozenset(cls))
    return matrix


# ----------------------------------------------------------------------
# LocalMetropolis
# ----------------------------------------------------------------------
def local_metropolis_transition_matrix(
    mrf: MRF,
    use_third_rule: bool = True,
    max_states: int = _DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Exact LocalMetropolis transition matrix.

    Enumerates all proposal vectors ``sigma in [q]^V`` (probability
    ``prod_v b_v(sigma_v)/|b_v|_1``) and, for edges whose check probability
    is strictly between 0 and 1, all coin outcomes.  A vertex accepts iff
    all incident edges pass (paper Algorithm 2 lines 5-9).

    ``use_third_rule=False`` drops the ``Ã_e(sigma_u, X_v)`` factor — the
    ablation showing rule 3 is required for reversibility (experiment E10).
    """
    configs = _all_configs(mrf, max_states)
    size = len(configs)
    q = mrf.q
    n = mrf.n
    edges = mrf.edges
    normalized = [mrf.normalized_edge_activity(u, v) for u, v in edges]
    proposal_probs = mrf.vertex_activity / mrf.vertex_activity.sum(axis=1, keepdims=True)

    matrix = np.zeros((size, size))
    proposals = list(itertools.product(range(q), repeat=n))
    for row, config in enumerate(configs):
        for sigma in proposals:
            sigma_probability = 1.0
            for v in range(n):
                sigma_probability *= proposal_probs[v, sigma[v]]
                if sigma_probability == 0.0:
                    break
            if sigma_probability == 0.0:
                continue
            # Per-edge pass probabilities.
            pass_probs = []
            for index, (u, v) in enumerate(edges):
                table = normalized[index]
                probability = table[sigma[u], sigma[v]] * table[config[u], sigma[v]]
                if use_third_rule:
                    probability *= table[sigma[u], config[v]]
                pass_probs.append(float(probability))
            random_edges = [
                index for index, p in enumerate(pass_probs) if 0.0 < p < 1.0
            ]
            if len(random_edges) > 20:
                raise StateSpaceTooLargeError(
                    "too many probabilistic edge checks to enumerate exactly"
                )
            for outcome in itertools.product((True, False), repeat=len(random_edges)):
                coin_probability = 1.0
                passed = [p >= 1.0 for p in pass_probs]
                for flag, index in zip(outcome, random_edges):
                    passed[index] = flag
                    coin_probability *= pass_probs[index] if flag else 1.0 - pass_probs[index]
                if coin_probability == 0.0:
                    continue
                blocked = [False] * n
                for index, (u, v) in enumerate(edges):
                    if not passed[index]:
                        blocked[u] = True
                        blocked[v] = True
                result = tuple(
                    config[v] if blocked[v] else sigma[v] for v in range(n)
                )
                column = config_index(result, q)
                matrix[row, column] += sigma_probability * coin_probability
    return matrix


# ----------------------------------------------------------------------
# spectral / stationary analysis
# ----------------------------------------------------------------------
def stationary_distribution(matrix: np.ndarray, tol: float = 1e-10) -> np.ndarray:
    """Return the stationary distribution of a row-stochastic matrix.

    Uses the left eigenvector for eigenvalue 1; requires the eigenvalue-1
    eigenspace to be one-dimensional (true for the paper's chains, which are
    absorbing into a single aperiodic communicating class of feasible
    configurations).
    """
    rows = matrix.sum(axis=1)
    if not np.allclose(rows, 1.0, atol=1e-8):
        raise ModelError("matrix is not row-stochastic")
    values, vectors = np.linalg.eig(matrix.T)
    candidates = np.nonzero(np.abs(values - 1.0) < 1e-6)[0]
    if len(candidates) == 0:
        raise ConvergenceError("no eigenvalue 1 found")
    best = candidates[np.argmin(np.abs(values[candidates] - 1.0))]
    vector = np.real(vectors[:, best])
    vector = np.where(np.abs(vector) < tol, 0.0, vector)
    if vector.sum() < 0:
        vector = -vector
    if np.any(vector < -tol):
        raise ConvergenceError("eigenvalue-1 eigenvector is not sign-definite")
    vector = np.clip(vector, 0.0, None)
    return vector / vector.sum()


def is_reversible(
    matrix: np.ndarray, distribution: np.ndarray, atol: float = 1e-10
) -> bool:
    """Check detailed balance ``pi_X P(X,Y) == pi_Y P(Y,X)`` for all pairs."""
    flow = distribution[:, None] * matrix
    return bool(np.allclose(flow, flow.T, atol=atol))


def spectral_gap(matrix: np.ndarray, distribution: np.ndarray) -> float:
    """Absolute spectral gap ``1 - max_{i>1} |lambda_i|`` on the support.

    Restricted to positive-probability states and computed on the
    similarity-symmetrised matrix ``D^{1/2} P D^{-1/2}`` — valid for
    reversible chains.
    """
    support = np.nonzero(distribution > 0.0)[0]
    sub = matrix[np.ix_(support, support)]
    pi = distribution[support]
    scale = np.sqrt(pi)
    symmetric = (scale[:, None] * sub) / scale[None, :]
    eigenvalues = np.linalg.eigvalsh((symmetric + symmetric.T) / 2.0)
    eigenvalues = np.sort(np.abs(eigenvalues))[::-1]
    if len(eigenvalues) < 2:
        return 1.0
    return float(1.0 - eigenvalues[1])


def exact_tv_decay(
    matrix: np.ndarray,
    target: GibbsDistribution | np.ndarray,
    steps: int,
    starts: list[int] | None = None,
) -> np.ndarray:
    """Worst-case TV distance to ``target`` after ``1..steps`` transitions.

    ``result[t-1] = max_{X in starts} dTV(e_X P^t, target)`` — the quantity
    whose first drop below eps is the mixing rate ``tau(eps)``.
    ``starts=None`` maximises over *all* states (the paper's definition).
    """
    probs = target.probs if isinstance(target, GibbsDistribution) else np.asarray(target)
    size = matrix.shape[0]
    if starts is None:
        rows = np.eye(size)
    else:
        rows = np.zeros((len(starts), size))
        for i, start in enumerate(starts):
            rows[i, start] = 1.0
    decay = np.empty(steps)
    for t in range(steps):
        rows = rows @ matrix
        decay[t] = 0.5 * np.abs(rows - probs[None, :]).sum(axis=1).max()
    return decay


def exact_mixing_time(
    matrix: np.ndarray,
    target: GibbsDistribution | np.ndarray,
    eps: float,
    max_steps: int = 10_000,
    starts: list[int] | None = None,
) -> int:
    """Return ``tau(eps) = min{t : worst-case TV <= eps}`` exactly.

    Raises :class:`ConvergenceError` if the chain has not mixed within
    ``max_steps``.
    """
    probs = target.probs if isinstance(target, GibbsDistribution) else np.asarray(target)
    size = matrix.shape[0]
    if starts is None:
        rows = np.eye(size)
    else:
        rows = np.zeros((len(starts), size))
        for i, start in enumerate(starts):
            rows[i, start] = 1.0
    for t in range(1, max_steps + 1):
        rows = rows @ matrix
        tv = 0.5 * np.abs(rows - probs[None, :]).sum(axis=1).max()
        if tv <= eps:
            return t
    raise ConvergenceError(
        f"chain did not reach TV <= {eps} within {max_steps} steps"
    )
