""":class:`DynamicEnsemble` — mutate the model, resample only the region.

The wrapper owns a replica-ensemble engine (dispatched through
:func:`repro.api.make_ensemble`, so every engine family is covered) plus
the mutation workflow around it:

1. a mutation (``add_edge`` / ``remove_edge`` / ``update_factor`` for
   MRFs, ``add_constraint`` / ``remove_constraint`` for CSPs) derives the
   new model through the copy-on-write API of the model classes — the
   ``model_fingerprint`` re-derives automatically, which is what keys
   serve-layer cache invalidation;
2. the influenced region (:func:`repro.dynamic.region.influenced_region`)
   is accumulated into a pending set, and the engine is rebuilt on the new
   model *warm-started from the current batch* with the same RNG stream —
   so the whole trajectory stays a pure function of the seed and the
   operation sequence (bit-identical for a fixed ``SeedSequence``);
3. ``resample()`` re-mixes only the pending region with the boundary
   clamped, through the engine's batched ``advance_region`` (or the
   sequential Glauber oracle for fallback engine families), for a round
   budget governed by ``|region|`` rather than ``n``.

The incremental claim — region resampling is distributionally equivalent
to a full re-run on the mutated model — is validated per engine family by
the statutils equivalence suite in ``tests/test_dynamic.py``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.api import default_round_budget, make_ensemble
from repro.backend import ArrayBackend
from repro.chains.base import SeedLike, as_generator
from repro.csp.model import Constraint, LocalCSP
from repro.dynamic.region import (
    influenced_region,
    region_round_budget,
    sequential_region_glauber,
)
from repro.errors import FallbackEngineWarning, ModelError
from repro.mrf.model import MRF
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace

__all__ = ["DynamicEnsemble"]


class DynamicEnsemble:
    """A replica ensemble over a *mutable* model with incremental resampling.

    Parameters
    ----------
    model:
        The initial :class:`~repro.mrf.model.MRF` or
        :class:`~repro.csp.model.LocalCSP`.
    replicas:
        Number of independent replicas R.
    method:
        Engine method, as in :func:`repro.api.make_ensemble`.
    eps:
        Accuracy target of the default mixing and region round budgets.
    radius:
        Influence radius: mutations mark the ball of this radius around
        the touched vertices (in the union of old and new adjacency) for
        resampling.  Larger radii trade work for fidelity; radius 0
        resamples the touched vertices only.
    seed:
        Seed for the single RNG stream (int, ``SeedSequence``, Generator
        or ``None``).  The whole trajectory — including every engine
        rebuild after a mutation — is bit-identical for a fixed
        ``SeedSequence`` and operation sequence.
    backend:
        Array backend for the batched kernels (:mod:`repro.backend`).
    """

    def __init__(
        self,
        model: MRF | LocalCSP,
        replicas: int,
        method: str = "luby-glauber",
        eps: float = 0.05,
        radius: int = 2,
        seed: SeedLike = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if radius < 0:
            raise ModelError(f"radius must be >= 0, got {radius}")
        self.model = model
        self.replicas = int(replicas)
        self.method = method
        self.eps = float(eps)
        self.radius = int(radius)
        self.backend = backend
        self.rng = as_generator(seed)
        self._engine = make_ensemble(
            model, self.replicas, method=method, seed=self.rng, backend=backend
        )
        self._pending: set[int] = set()
        self.mutations = 0
        self.resamples = 0

    # ------------------------------------------------------------------
    # batch views
    # ------------------------------------------------------------------
    @property
    def config(self) -> np.ndarray:
        """The current ``(R, n)`` batch (an int64 copy — safe to mutate)."""
        return self._engine.config

    @property
    def pending_region(self) -> np.ndarray:
        """Vertices marked for resampling by mutations since the last
        :meth:`resample`, as a sorted int64 array (possibly empty)."""
        return np.asarray(sorted(self._pending), dtype=np.int64)

    @property
    def engine(self):
        """The current underlying replica-ensemble engine (rebuilt on mutation)."""
        return self._engine

    @property
    def steps_taken(self) -> int:
        """Steps taken by the *current* engine (resets on mutation rebuilds)."""
        return self._engine.steps_taken

    def model_fingerprint(self) -> str:
        """Content fingerprint of the *current* model (changes on mutation)."""
        return self.model.model_fingerprint()

    # ------------------------------------------------------------------
    # full-model advancement
    # ------------------------------------------------------------------
    def mix(self, rounds: int | None = None) -> DynamicEnsemble:
        """Advance the full model by ``rounds`` (default: the method's budget)."""
        if rounds is None:
            rounds = default_round_budget(self.model, self.method, self.eps)
        self._engine.advance(rounds)
        return self

    def advance(self, steps: int) -> DynamicEnsemble:
        """Advance all replicas ``steps`` full-model rounds."""
        self._engine.advance(steps)
        return self

    def run(self, steps: int) -> np.ndarray:
        """Advance ``steps`` full-model rounds; return the ``(R, n)`` batch."""
        return self.advance(steps).config

    # ------------------------------------------------------------------
    # mutations (MRF)
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, activity=None) -> DynamicEnsemble:
        """Add edge ``{u, v}``; mark its influence ball for resampling.

        ``activity`` may be omitted when every existing edge shares one
        activity matrix (the homogeneous case — colourings, Ising,
        hardcore), which the new edge then reuses.
        """
        model = self._require_mrf("add_edge")
        if activity is None:
            activity = self._shared_edge_activity()
        return self._mutate(model.with_edge(u, v, activity), (u, v))

    def remove_edge(self, u: int, v: int) -> DynamicEnsemble:
        """Remove edge ``{u, v}``; mark its influence ball for resampling."""
        model = self._require_mrf("remove_edge")
        return self._mutate(model.without_edge(u, v), (u, v))

    def update_factor(self, u: int, v: int, activity) -> DynamicEnsemble:
        """Replace the activity matrix on existing edge ``{u, v}``."""
        model = self._require_mrf("update_factor")
        return self._mutate(model.with_edge_activity(u, v, activity), (u, v))

    # ------------------------------------------------------------------
    # mutations (CSP)
    # ------------------------------------------------------------------
    def add_constraint(self, constraint: Constraint) -> DynamicEnsemble:
        """Append ``constraint``; mark its scope's influence ball."""
        model = self._require_csp("add_constraint")
        return self._mutate(model.with_constraint(constraint), constraint.scope)

    def remove_constraint(self, index: int) -> DynamicEnsemble:
        """Remove constraint ``index``; mark its scope's influence ball."""
        model = self._require_csp("remove_constraint")
        index = int(index)
        if not (0 <= index < len(model.constraints)):
            raise ModelError(
                f"constraint index {index} outside "
                f"0..{len(model.constraints) - 1}"
            )
        touched = model.constraints[index].scope
        return self._mutate(model.without_constraint(index), touched)

    # ------------------------------------------------------------------
    # incremental resampling
    # ------------------------------------------------------------------
    def resample(self, rounds: int | None = None) -> DynamicEnsemble:
        """Re-mix the pending region with the boundary clamped; clear it.

        ``rounds`` defaults to :func:`~repro.dynamic.region.region_round_budget`
        for the pending region's size — O(log |S|)-shaped for the
        distributed methods instead of the O(log n)-shaped full budget.
        A no-op when no mutation is pending.
        """
        if not self._pending:
            return self
        region = self.pending_region
        batched = hasattr(self._engine, "advance_region")
        if rounds is None:
            # The sequential oracle is a single-site Glauber kernel, so the
            # fallback path needs the Glauber-shaped budget.
            kernel = self.method if batched else "glauber"
            rounds = region_round_budget(
                self.model, kernel, int(region.size), self.eps
            )
        with _obs_trace.span(
            "dynamic.resample",
            engine=type(self._engine).__name__,
            region=int(region.size),
            rounds=int(rounds),
            batched=batched,
        ):
            if batched:
                self._engine.advance_region(rounds, region)
            else:
                batch = self._engine.config
                sequential_region_glauber(self.model, batch, region, rounds, self.rng)
                self._rebuild_engine(batch)
        if _obs_metrics.enabled:
            _obs_metrics.inc("repro_dynamic_resamples_total")
            _obs_metrics.observe("repro_dynamic_region_size", int(region.size))
            _obs_metrics.observe("repro_dynamic_region_rounds", int(rounds))
        self._pending.clear()
        self.resamples += 1
        return self

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_mrf(self, op: str) -> MRF:
        if not isinstance(self.model, MRF):
            raise ModelError(f"{op} applies to MRF models, not LocalCSP")
        return self.model

    def _require_csp(self, op: str) -> LocalCSP:
        if not isinstance(self.model, LocalCSP):
            raise ModelError(f"{op} applies to LocalCSP models, not MRF")
        return self.model

    def _shared_edge_activity(self) -> np.ndarray:
        model = self.model
        if not model.edges:
            raise ModelError(
                "add_edge on an edgeless model needs an explicit activity matrix"
            )
        first = model.edge_activity(*model.edges[0])
        if any(
            model.edge_activity(u, v) is not first
            and not np.array_equal(model.edge_activity(u, v), first)
            for u, v in model.edges[1:]
        ):
            raise ModelError(
                "model has heterogeneous edge activities; pass the new "
                "edge's activity matrix explicitly"
            )
        return first

    def _mutate(self, new_model, touched) -> DynamicEnsemble:
        region = influenced_region(
            self.model, new_model, touched, radius=self.radius
        )
        self._pending.update(int(v) for v in region)
        self.model = new_model
        self._rebuild_engine(self._engine.config)
        self.mutations += 1
        if _obs_metrics.enabled:
            _obs_metrics.inc("repro_dynamic_mutations_total")
        return self

    def _rebuild_engine(self, batch: np.ndarray) -> None:
        """Rebuild the engine on the current model, warm-started from ``batch``.

        The RNG stream is carried over (the Generator object is shared), so
        the trajectory stays deterministic across rebuilds.  The fallback
        warning was already issued at construction; mutations should not
        repeat it once per operation.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FallbackEngineWarning)
            self._engine = make_ensemble(
                self.model,
                self.replicas,
                method=self.method,
                seed=self.rng,
                initial=batch,
                backend=self.backend,
            )
