"""Single-site Metropolis chain.

The sequential ancestor of LocalMetropolis: pick a uniformly random vertex,
propose a spin from the vertex-activity distribution ``b_v / |b_v|_1``, and
accept with the Metropolis filter applied to the incident edge activities.
The paper (footnote 2) treats its irreducibility interchangeably with the
Glauber dynamics'; we implement it both as a baseline and because its
single-proposal acceptance rule is exactly the ``k = 1`` slice of the
LocalMetropolis edge filter.
"""

from __future__ import annotations


from repro.chains.base import Chain
from repro.chains.glauber import sample_spin

__all__ = ["MetropolisChain"]


class MetropolisChain(Chain):
    """Single-site Metropolis with proposals drawn from vertex activities."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        totals = self.mrf.vertex_activity.sum(axis=1, keepdims=True)
        self._proposal = self.mrf.vertex_activity / totals

    def step(self) -> None:
        """Propose at one random vertex; accept with the edge-activity ratio.

        With the current spin ``x = X_v`` and proposal ``c``, acceptance is

            min(1, prod_u A_uv(c, X_u) / A_uv(x, X_u))

        computed with the convention that a zero denominator together with a
        positive numerator accepts (the chain escapes infeasible states), and
        zero numerator rejects.
        """
        v = int(self.rng.integers(self.mrf.n))
        proposal = sample_spin(self._proposal[v], self.rng)
        current = int(self.config[v])
        if proposal == current:
            self.steps_taken += 1
            return
        numerator = 1.0
        denominator = 1.0
        for u in self.mrf.neighbors(v):
            matrix = self.mrf.edge_activity(u, v)
            numerator *= matrix[proposal, self.config[u]]
            denominator *= matrix[current, self.config[u]]
        if numerator == 0.0:
            accept = False
        elif denominator == 0.0:
            accept = True
        else:
            ratio = numerator / denominator
            accept = ratio >= 1.0 or self.rng.random() < ratio
        if accept:
            self.config[v] = proposal
        self.steps_taken += 1
