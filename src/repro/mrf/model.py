"""The :class:`MRF` container — paper Section 2.2, equation (1).

An MRF instance couples a simple graph ``G(V, E)`` (vertices ``0..n-1``) with

* a spin domain ``[q] = {0, ..., q-1}`` (the paper writes ``{1..q}``; we use
  0-based spins throughout),
* one non-negative *symmetric* ``q x q`` edge activity matrix ``A_e`` per edge,
* one non-negative ``q``-vector vertex activity ``b_v`` per vertex.

The weight of a configuration ``sigma in [q]^V`` is

    w(sigma) = prod_{e=uv in E} A_e(sigma_u, sigma_v) * prod_{v in V} b_v(sigma_v)

and the Gibbs distribution is ``mu(sigma) = w(sigma) / Z``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.errors import ModelError
from repro.graphs.structure import check_vertex_labels
from repro.serialize import payload_fingerprint

__all__ = ["MRF", "Config", "as_config"]

#: A configuration is an assignment of a spin to every vertex, stored as an
#: immutable tuple so it can key dictionaries and appear in enumerations.
Config = tuple[int, ...]


def as_config(values: Iterable[int]) -> Config:
    """Coerce an iterable of spins (e.g. a numpy array) into a :data:`Config`."""
    return tuple(int(x) for x in values)


class MRF:
    """A Markov random field on a graph with vertices ``0..n-1``.

    Parameters
    ----------
    graph:
        Simple undirected graph with integer vertices ``0..n-1``.
    q:
        Number of spin states; spins are ``0..q-1``.
    edge_activities:
        Either a single ``(q, q)`` symmetric non-negative matrix applied to
        every edge, or a mapping from edges (any orientation) to per-edge
        matrices.
    vertex_activities:
        Either a single length-``q`` non-negative vector applied to every
        vertex, a mapping ``vertex -> vector``, or an ``(n, q)`` array.
    name:
        Optional human-readable model name used in reprs and reports.
    """

    def __init__(
        self,
        graph: nx.Graph,
        q: int,
        edge_activities: np.ndarray | Mapping[tuple[int, int], np.ndarray],
        vertex_activities: np.ndarray | Mapping[int, np.ndarray],
        name: str = "mrf",
    ) -> None:
        check_vertex_labels(graph)
        if q < 2:
            raise ModelError(f"MRF needs q >= 2 spin states, got {q}")
        self.graph = graph
        self.q = int(q)
        self.n = graph.number_of_nodes()
        self.name = name
        self.edges: list[tuple[int, int]] = [
            (min(u, v), max(u, v)) for u, v in graph.edges()
        ]
        self.edges.sort()
        self._neighbors: list[tuple[int, ...]] = [
            tuple(sorted(graph.neighbors(v))) for v in range(self.n)
        ]
        self._edge_activity = self._build_edge_activities(edge_activities)
        self.vertex_activity = self._build_vertex_activities(vertex_activities)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_edge_activities(
        self, spec: np.ndarray | Mapping[tuple[int, int], np.ndarray]
    ) -> dict[tuple[int, int], np.ndarray]:
        activities: dict[tuple[int, int], np.ndarray] = {}
        if isinstance(spec, Mapping):
            # Frozen matrices are shared by identity across edges (the
            # copy-on-write mutation path maps every edge to one frozen
            # table), so each distinct object is validated exactly once.
            checked: dict[int, np.ndarray] = {}
            for edge in self.edges:
                u, v = edge
                if edge in spec:
                    matrix = spec[edge]
                elif (v, u) in spec:
                    matrix = spec[(v, u)]
                else:
                    raise ModelError(f"no edge activity supplied for edge {edge}")
                matrix = np.asarray(matrix, dtype=float)
                if not matrix.flags.writeable and id(matrix) in checked:
                    activities[edge] = checked[id(matrix)]
                    continue
                frozen = self._check_edge_matrix(matrix, edge)
                if not matrix.flags.writeable:
                    checked[id(matrix)] = frozen
                activities[edge] = frozen
        else:
            matrix = self._check_edge_matrix(np.asarray(spec, dtype=float), None)
            for edge in self.edges:
                activities[edge] = matrix
        return activities

    def _check_edge_matrix(
        self, matrix: np.ndarray, edge: tuple[int, int] | None
    ) -> np.ndarray:
        label = f"edge {edge}" if edge is not None else "shared edge activity"
        if matrix.shape != (self.q, self.q):
            raise ModelError(
                f"{label}: activity must be {self.q}x{self.q}, got {matrix.shape}"
            )
        if np.any(matrix < 0):
            raise ModelError(f"{label}: activities must be non-negative")
        if not np.allclose(matrix, matrix.T):
            raise ModelError(f"{label}: activity matrix must be symmetric")
        if np.all(matrix == 0):
            raise ModelError(f"{label}: activity matrix must not be identically zero")
        if matrix.flags.writeable:  # already-frozen tables are shared, not copied
            matrix = matrix.copy()
            matrix.setflags(write=False)
        return matrix

    def _build_vertex_activities(
        self, spec: np.ndarray | Mapping[int, np.ndarray]
    ) -> np.ndarray:
        if (
            isinstance(spec, np.ndarray)
            and spec.dtype == np.float64
            and spec.shape == (self.n, self.q)
            and not spec.flags.writeable
        ):
            # Copy-on-write fast path: share a frozen (n, q) table instead
            # of copying it; the validity checks below still run.
            table = spec
        else:
            table = np.empty((self.n, self.q), dtype=float)
            if isinstance(spec, Mapping):
                for v in range(self.n):
                    if v not in spec:
                        raise ModelError(f"no vertex activity supplied for vertex {v}")
                    table[v] = np.asarray(spec[v], dtype=float)
            else:
                arr = np.asarray(spec, dtype=float)
                if arr.shape == (self.q,):
                    table[:] = arr
                elif arr.shape == (self.n, self.q):
                    table[:] = arr
                else:
                    raise ModelError(
                        f"vertex activities must have shape ({self.q},) or "
                        f"({self.n}, {self.q}), got {arr.shape}"
                    )
        if np.any(table < 0):
            raise ModelError("vertex activities must be non-negative")
        if np.any(np.all(table == 0, axis=1)):
            raise ModelError("every vertex needs at least one positive activity")
        table.setflags(write=False)
        return table

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> tuple[int, ...]:
        """Return the sorted neighbourhood Γ(v)."""
        return self._neighbors[v]

    def degree(self, v: int) -> int:
        """Return deg(v)."""
        return len(self._neighbors[v])

    @property
    def max_degree(self) -> int:
        """Return the maximum degree Δ of the underlying graph."""
        if self.n == 0:
            return 0
        return max(len(nbrs) for nbrs in self._neighbors)

    def edge_activity(self, u: int, v: int) -> np.ndarray:
        """Return ``A_{uv}`` (symmetric, so orientation is irrelevant)."""
        key = (min(u, v), max(u, v))
        try:
            return self._edge_activity[key]
        except KeyError:
            raise ModelError(f"({u}, {v}) is not an edge of the MRF graph") from None

    def normalized_edge_activity(self, u: int, v: int) -> np.ndarray:
        """Return ``Ã_e = A_e / max_{i,j} A_e(i, j)`` — the LocalMetropolis filter matrix."""
        matrix = self.edge_activity(u, v)
        return matrix / matrix.max()

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def weight(self, config: Sequence[int]) -> float:
        """Return the unnormalised weight ``w(config)`` of equation (1)."""
        if len(config) != self.n:
            raise ModelError(
                f"configuration length {len(config)} != number of vertices {self.n}"
            )
        weight = 1.0
        for v in range(self.n):
            weight *= self.vertex_activity[v, config[v]]
            if weight == 0.0:
                return 0.0
        for u, v in self.edges:
            weight *= self._edge_activity[(u, v)][config[u], config[v]]
            if weight == 0.0:
                return 0.0
        return weight

    def log_weight(self, config: Sequence[int]) -> float:
        """Return ``log w(config)``; ``-inf`` for infeasible configurations."""
        weight = self.weight(config)
        if weight == 0.0:
            return float("-inf")
        return float(np.log(weight))

    def is_feasible(self, config: Sequence[int]) -> bool:
        """Return True iff ``config`` has positive weight (paper: ``mu(sigma) > 0``)."""
        return self.weight(config) > 0.0

    # ------------------------------------------------------------------
    # structure probes
    # ------------------------------------------------------------------
    def is_hard_constraint_model(self) -> bool:
        """Return True iff every activity value is 0 or 1.

        For such models (colourings, independent sets, ...) the Gibbs
        distribution is the uniform distribution over CSP solutions, and the
        LocalMetropolis edge checks are deterministic given the proposals.
        """
        if np.any((self.vertex_activity != 0.0) & (self.vertex_activity != 1.0)):
            return False
        return all(
            bool(np.all((matrix == 0.0) | (matrix == 1.0)))
            for matrix in self._edge_activity.values()
        )

    # ------------------------------------------------------------------
    # copy-on-write mutation
    # ------------------------------------------------------------------
    def _replace(
        self,
        edge_activities: Mapping[tuple[int, int], np.ndarray],
        vertex_activities: np.ndarray,
    ) -> MRF:
        """Build a sibling MRF sharing the (read-only) activity arrays."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(edge_activities.keys())
        return MRF(graph, self.q, edge_activities, vertex_activities, name=self.name)

    def with_edge(self, u: int, v: int, activity: np.ndarray) -> MRF:
        """Return a copy with edge ``{u, v}`` added (or its activity replaced).

        Copy-on-write: the untouched per-edge and per-vertex activity
        tables are shared with ``self`` (they are read-only), so the cost
        is O(n + m) bookkeeping, not a model rebuild.  The derived model's
        :meth:`model_fingerprint` reflects the mutation automatically
        because fingerprints are computed from content on demand.
        """
        u, v = int(u), int(v)
        if u == v:
            raise ModelError(f"cannot add a self-loop at vertex {u}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ModelError(f"edge ({u}, {v}) outside vertices 0..{self.n - 1}")
        key = (min(u, v), max(u, v))
        activities = dict(self._edge_activity)
        activities[key] = self._check_edge_matrix(
            np.asarray(activity, dtype=float), key
        )
        return self._replace(activities, self.vertex_activity)

    def without_edge(self, u: int, v: int) -> MRF:
        """Return a copy with edge ``{u, v}`` removed (copy-on-write)."""
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key not in self._edge_activity:
            raise ModelError(f"({u}, {v}) is not an edge of the MRF graph")
        activities = dict(self._edge_activity)
        del activities[key]
        return self._replace(activities, self.vertex_activity)

    def with_edge_activity(self, u: int, v: int, activity: np.ndarray) -> MRF:
        """Return a copy with the factor on existing edge ``{u, v}`` replaced."""
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key not in self._edge_activity:
            raise ModelError(f"({u}, {v}) is not an edge of the MRF graph")
        return self.with_edge(u, v, activity)

    def with_vertex_activity(self, v: int, activity: np.ndarray) -> MRF:
        """Return a copy with the external field ``b_v`` replaced."""
        v = int(v)
        if not (0 <= v < self.n):
            raise ModelError(f"vertex {v} outside 0..{self.n - 1}")
        table = np.array(self.vertex_activity, dtype=float)
        table[v] = np.asarray(activity, dtype=float)
        return self._replace(self._edge_activity, table)

    # ------------------------------------------------------------------
    # canonical serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical plain-JSON form: sorted edges, dtype-normalized tables.

        The payload depends only on the model's mathematical content (the
        constructor already sorts ``edges`` canonically and coerces every
        activity to float64), never on how the instance was built — two
        equal models serialise to equal payloads.  Inverse:
        :meth:`from_dict`.
        """
        return {
            "type": "mrf",
            "name": self.name,
            "n": self.n,
            "q": self.q,
            "edges": [[u, v] for u, v in self.edges],
            "edge_activities": [
                self._edge_activity[edge].tolist() for edge in self.edges
            ],
            "vertex_activities": self.vertex_activity.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> MRF:
        """Rebuild an :class:`MRF` from a :meth:`to_dict` payload."""
        try:
            n = int(payload["n"])
            q = int(payload["q"])
            edges = [(int(u), int(v)) for u, v in payload["edges"]]
            edge_tables = payload["edge_activities"]
            vertex_table = np.asarray(payload["vertex_activities"], dtype=float)
            name = str(payload.get("name", "mrf"))
        except (KeyError, TypeError, ValueError) as error:
            raise ModelError(f"malformed MRF payload: {error}") from None
        if len(edge_tables) != len(edges):
            raise ModelError(
                f"MRF payload has {len(edges)} edges but "
                f"{len(edge_tables)} edge activity tables"
            )
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        activities = {
            edge: np.asarray(table, dtype=float)
            for edge, table in zip(edges, edge_tables)
        }
        return cls(graph, q, activities, vertex_table, name=name)

    def model_fingerprint(self) -> str:
        """Stable content hash of the distribution-defining payload.

        The ``name`` field is cosmetic and excluded: two independently
        built copies of the same model hash identically, so result caches
        keyed on this fingerprint deduplicate across processes.  Equal
        fingerprints imply bit-identical sampling results for equal
        requests (every value that can influence a sampled bit is hashed).
        """
        payload = self.to_dict()
        del payload["name"]
        return payload_fingerprint(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MRF(name={self.name!r}, n={self.n}, q={self.q}, "
            f"edges={len(self.edges)})"
        )
