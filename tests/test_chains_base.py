"""Tests for chain infrastructure (repro.chains.base)."""

import numpy as np
import pytest

from repro.chains import GlauberDynamics, greedy_feasible_config, random_config
from repro.errors import ModelError
from repro.graphs import cycle_graph, path_graph
from repro.mrf import hardcore_mrf, proper_coloring_mrf


class TestInitialConfigs:
    def test_greedy_coloring_is_proper_when_q_exceeds_degree(self):
        for q in (3, 4, 5):
            mrf = proper_coloring_mrf(cycle_graph(7), q)
            config = greedy_feasible_config(mrf)
            assert mrf.is_feasible(config)

    def test_greedy_hardcore_feasible(self):
        mrf = hardcore_mrf(cycle_graph(6), 2.0)
        assert mrf.is_feasible(greedy_feasible_config(mrf))

    def test_greedy_with_rng_still_feasible(self, rng):
        mrf = proper_coloring_mrf(cycle_graph(7), 4)
        config = greedy_feasible_config(mrf, rng)
        assert mrf.is_feasible(config)

    def test_random_config_in_range(self, rng):
        mrf = proper_coloring_mrf(path_graph(5), 3)
        config = random_config(mrf, rng)
        assert config.shape == (5,)
        assert np.all((config >= 0) & (config < 3))


class TestChainMechanics:
    def test_explicit_initial_config(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        chain = GlauberDynamics(mrf, initial=[0, 1, 2], seed=0)
        assert tuple(chain.config) == (0, 1, 2)

    def test_initial_validation(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        with pytest.raises(ModelError):
            GlauberDynamics(mrf, initial=[0, 1])
        with pytest.raises(ModelError):
            GlauberDynamics(mrf, initial=[0, 1, 5])

    def test_run_counts_steps(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        chain = GlauberDynamics(mrf, seed=0)
        chain.run(17)
        assert chain.steps_taken == 17

    def test_trajectory_records_initial_and_strides(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        chain = GlauberDynamics(mrf, initial=[0, 1, 0], seed=0)
        states = chain.trajectory(10, record_every=2)
        assert states[0] == (0, 1, 0)
        assert len(states) == 6  # initial + 5 checkpoints

    def test_trajectory_rejects_bad_stride(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        chain = GlauberDynamics(mrf, seed=0)
        with pytest.raises(ModelError):
            chain.trajectory(5, record_every=0)

    def test_seeding_reproducible(self):
        mrf = proper_coloring_mrf(cycle_graph(5), 4)
        a = GlauberDynamics(mrf, initial=[0, 1, 0, 1, 2], seed=5).run(100)
        b = GlauberDynamics(mrf, initial=[0, 1, 0, 1, 2], seed=5).run(100)
        assert np.array_equal(a, b)

    def test_generator_seed_accepted(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        chain = GlauberDynamics(mrf, seed=np.random.default_rng(3))
        chain.run(5)
        assert chain.steps_taken == 5

    def test_current_returns_tuple(self):
        mrf = proper_coloring_mrf(path_graph(3), 3)
        chain = GlauberDynamics(mrf, initial=[0, 1, 0], seed=0)
        assert chain.current == (0, 1, 0)


class TestSeedCoercion:
    """The shared SeedLike coercion helper (as_seed_sequence).

    One helper serves every entry point that needs a spawnable root:
    the LOCAL runtime, the sharded exec subsystem, the sequential-chain
    fallback ensemble and the facade's protocol engines.
    """

    def test_int_and_seed_sequence_give_same_root(self):
        from repro.chains.base import as_seed_sequence

        a = as_seed_sequence(7)
        b = as_seed_sequence(np.random.SeedSequence(7))
        assert a.entropy == b.entropy == 7
        assert np.random.default_rng(a).integers(1 << 30) == np.random.default_rng(
            b
        ).integers(1 << 30)

    def test_none_draws_fresh_entropy(self):
        from repro.chains.base import as_seed_sequence

        assert as_seed_sequence(None).entropy != as_seed_sequence(None).entropy

    def test_generator_derives_one_draw(self):
        from repro.chains.base import as_seed_sequence

        root = as_seed_sequence(np.random.default_rng(3))
        expected = int(
            np.random.default_rng(3).integers(np.iinfo(np.int64).max)
        )
        assert root.entropy == expected

    def test_generator_rejected_when_disallowed(self):
        from repro.chains.base import as_seed_sequence

        with pytest.raises(ModelError, match="Generator"):
            as_seed_sequence(np.random.default_rng(3), allow_generator=False)

    def test_unsupported_type_rejected(self):
        from repro.chains.base import as_seed_sequence

        with pytest.raises(ModelError, match="seed type"):
            as_seed_sequence("nope")

    def test_facade_local_engine_accepts_seed_sequence(self):
        import repro

        mrf = proper_coloring_mrf(cycle_graph(5), 5)
        by_int = repro.sample(mrf, engine="reference", rounds=4, seed=11)
        by_seq = repro.sample(
            mrf, engine="reference", rounds=4, seed=np.random.SeedSequence(11)
        )
        assert np.array_equal(by_int, by_seq)

    def test_fallback_ensemble_accepts_seed_sequence(self):
        from repro.analysis.convergence import SequentialChainEnsemble

        mrf = proper_coloring_mrf(cycle_graph(5), 4)

        def factory(rng):
            return GlauberDynamics(mrf, seed=rng)

        a = SequentialChainEnsemble(factory, 4, seed=9).advance(10).config
        b = SequentialChainEnsemble(
            factory, 4, seed=np.random.SeedSequence(9)
        ).advance(10).config
        assert np.array_equal(a, b)
