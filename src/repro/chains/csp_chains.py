"""CSP extensions of the two distributed chains (paper remarks, Sections 3-4).

* :class:`LubyGlauberCSP` — the Luby step runs on the CSP's *conflict graph*
  so the selected set is strongly independent in the constraint hypergraph;
  selected vertices resample from their conditional marginals.
* :class:`LocalMetropolisCSP` — every vertex proposes a uniform spin; every
  constraint ``c = (f_c, S_c)`` of arity ``k`` passes its check with
  probability equal to the product of the ``2^k - 1`` normalised factors
  ``f̃_c(tau)`` over the mixings ``tau`` of the proposal vector with the
  current vector on ``S_c`` — every subset of scope positions reads the
  proposal, except the all-current mixing ``X_{S_c}`` itself.  A vertex
  accepts iff all incident constraints pass.

:func:`local_metropolis_csp_transition_matrix` materialises the exact
transition matrix so tests can verify the stationary distribution is the CSP
Gibbs measure (experiment E9).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence

import numpy as np

from repro.chains.glauber import sample_spin
from repro.chains.schedulers import LubyScheduler
from repro.csp.hypergraph import conflict_graph
from repro.csp.model import LocalCSP
from repro.errors import ModelError, StateSpaceTooLargeError
from repro.mrf.distribution import config_index

__all__ = [
    "LubyGlauberCSP",
    "LocalMetropolisCSP",
    "constraint_pass_probability",
    "greedy_csp_config",
    "local_metropolis_csp_transition_matrix",
]


def constraint_pass_probability(
    table_normalized: np.ndarray,
    scope: tuple[int, ...],
    proposals: Sequence[int],
    current: Sequence[int],
) -> float:
    """Check probability of one constraint: product of ``2^k - 1`` factors.

    Iterates over all mixings of (proposal, current) on the scope except the
    all-current one, multiplying the normalised factor values.

    Raises :class:`repro.errors.ModelError` if the factor table is
    non-normalisable — all-zero or containing non-finite entries — since no
    pass probability is defined for such a constraint (a naive ``0/0``
    normalisation would silently emit NaN probabilities downstream).  The
    guard is a single ``max`` pass (NaN propagates through ``max``), cheap
    enough for the per-constraint-per-step hot path.
    """
    table_normalized = np.asarray(table_normalized, dtype=float)
    maximum = float(table_normalized.max(initial=0.0))
    if not math.isfinite(maximum):
        raise ModelError(
            "constraint factors must be finite; got non-finite entries in the "
            "normalised table"
        )
    if maximum <= 0.0:
        raise ModelError(
            "non-normalisable constraint: all factors are zero, so the "
            "LocalMetropolis pass probability is undefined"
        )
    arity = len(scope)
    probability = 1.0
    for mask in range(1, 2**arity):
        local = tuple(
            int(proposals[scope[i]]) if (mask >> i) & 1 else int(current[scope[i]])
            for i in range(arity)
        )
        probability *= float(table_normalized[local])
        if probability == 0.0:
            return 0.0
    return probability


def greedy_csp_config(csp: LocalCSP) -> np.ndarray:
    """Assign vertices greedily, preferring spins keeping all constraints alive.

    The deterministic default start shared by the sequential CSP chains and
    the replica ensembles of :mod:`repro.chains.ensemble` — both start every
    run (and every replica) from the same configuration unless told
    otherwise, so cross-implementation trajectories are comparable.
    """
    config = np.zeros(csp.n, dtype=np.int64)
    for v in range(csp.n):
        scores = np.zeros(csp.q)
        for spin in range(csp.q):
            config[v] = spin
            ok = True
            for index in csp.incident[v]:
                constraint = csp.constraints[index]
                if max(constraint.scope) > v:
                    continue  # involves unassigned vertices; skip
                if constraint.evaluate(config) == 0.0:
                    ok = False
                    break
            scores[spin] = 1.0 if ok else 0.0
        candidates = np.nonzero(scores > 0)[0]
        config[v] = int(candidates[0]) if candidates.size else 0
    return config


class _CSPChainBase:
    """Shared state for CSP chains: configuration, RNG, feasibility helpers."""

    def __init__(
        self,
        csp: LocalCSP,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.csp = csp
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        if initial is None:
            self.config = greedy_csp_config(csp)
        else:
            config = np.asarray(initial, dtype=np.int64)
            if config.shape != (csp.n,):
                raise ModelError(f"initial configuration must have shape ({csp.n},)")
            self.config = config.copy()
        self.steps_taken = 0

    def run(self, steps: int) -> np.ndarray:
        """Advance ``steps`` transitions; return the configuration."""
        for _ in range(steps):
            self.step()
        return self.config

    def is_feasible(self) -> bool:
        """Return True iff the current configuration satisfies all constraints."""
        return self.csp.is_feasible(self.config)

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class LubyGlauberCSP(_CSPChainBase):
    """LubyGlauber on a weighted local CSP (remark after Algorithm 1)."""

    def __init__(
        self,
        csp: LocalCSP,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(csp, initial=initial, seed=seed)
        self.scheduler = LubyScheduler(conflict_graph(csp))

    def step(self) -> None:
        """Select a strongly independent set; heat-bath-update it in parallel."""
        selected = self.scheduler.sample(self.rng)
        updates: list[tuple[int, int]] = []
        for v in np.nonzero(selected)[0]:
            distribution = self.csp.conditional_marginal(self.config, int(v))
            updates.append((int(v), sample_spin(distribution, self.rng)))
        for v, spin in updates:
            self.config[v] = spin
        self.steps_taken += 1


class LocalMetropolisCSP(_CSPChainBase):
    """LocalMetropolis on a weighted local CSP (remark after Algorithm 2)."""

    def __init__(
        self,
        csp: LocalCSP,
        initial: Sequence[int] | np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(csp, initial=initial, seed=seed)
        self._normalized = [c.normalized_table() for c in csp.constraints]

    def step(self) -> None:
        """Uniform proposals; per-constraint 2^k - 1-factor filter; accept if clean."""
        proposals = self.rng.integers(0, self.csp.q, size=self.csp.n)
        blocked = np.zeros(self.csp.n, dtype=bool)
        for index, constraint in enumerate(self.csp.constraints):
            probability = constraint_pass_probability(
                self._normalized[index], constraint.scope, proposals, self.config
            )
            if probability >= 1.0:
                passed = True
            elif probability <= 0.0:
                passed = False
            else:
                passed = self.rng.random() < probability
            if not passed:
                for v in constraint.scope:
                    blocked[v] = True
        accept = ~blocked
        self.config[accept] = proposals[accept]
        self.steps_taken += 1


def local_metropolis_csp_transition_matrix(
    csp: LocalCSP, max_states: int = 4096
) -> np.ndarray:
    """Exact transition matrix of :class:`LocalMetropolisCSP`.

    Enumerates ``q^n`` proposal vectors per state and coin outcomes for
    constraints whose pass probability is strictly between 0 and 1.
    """
    size = csp.q ** csp.n
    if size > max_states:
        raise StateSpaceTooLargeError(
            f"state space {csp.q}**{csp.n} = {size} exceeds max_states={max_states}"
        )
    normalized = [c.normalized_table() for c in csp.constraints]
    configs = list(itertools.product(range(csp.q), repeat=csp.n))
    proposal_probability = (1.0 / csp.q) ** csp.n
    matrix = np.zeros((size, size))
    for row, config in enumerate(configs):
        for sigma in configs:
            pass_probs = [
                constraint_pass_probability(
                    normalized[i], csp.constraints[i].scope, sigma, config
                )
                for i in range(len(csp.constraints))
            ]
            random_indices = [i for i, p in enumerate(pass_probs) if 0.0 < p < 1.0]
            if len(random_indices) > 16:
                raise StateSpaceTooLargeError(
                    "too many probabilistic constraint checks to enumerate"
                )
            for outcome in itertools.product((True, False), repeat=len(random_indices)):
                coin_probability = 1.0
                passed = [p >= 1.0 for p in pass_probs]
                for flag, i in zip(outcome, random_indices):
                    passed[i] = flag
                    coin_probability *= pass_probs[i] if flag else 1.0 - pass_probs[i]
                if coin_probability == 0.0:
                    continue
                blocked = [False] * csp.n
                for i, constraint in enumerate(csp.constraints):
                    if not passed[i]:
                        for v in constraint.scope:
                            blocked[v] = True
                result = tuple(
                    config[v] if blocked[v] else sigma[v] for v in range(csp.n)
                )
                column = config_index(result, csp.q)
                matrix[row, column] += proposal_probability * coin_probability
    return matrix
