"""Run Algorithms 1 and 2 as genuine message-passing LOCAL protocols.

Unlike the chain API (which advances a global configuration), this example
executes the paper's pseudocode node-by-node on the LOCAL-model simulator:
every node sees only its private input (its activity slice), its private
randomness, and its neighbours' messages.  The runtime counts rounds and
messages, so you can see the communication profile the paper reasons about
— one chain iteration per round, two messages per edge per round, and
payloads of O(log n) bits.

Run:  python examples/distributed_coloring.py
"""

from __future__ import annotations

import numpy as np

from repro.distributed import (
    run_local_metropolis_protocol,
    run_luby_glauber_protocol,
)
from repro.graphs import grid_graph
from repro.mrf import proper_coloring_mrf


def main() -> None:
    graph = grid_graph(8, 8)
    mrf = proper_coloring_mrf(graph, q=16)
    print(f"network: 8x8 grid, n={mrf.n}, Delta={mrf.max_degree}, q=16\n")

    for name, runner, rounds in (
        ("LubyGlauber (Algorithm 1)", run_luby_glauber_protocol, 120),
        ("LocalMetropolis (Algorithm 2)", run_local_metropolis_protocol, 40),
    ):
        config, stats = runner(mrf, rounds=rounds, seed=42)
        violations = sum(1 for u, v in mrf.edges if config[u] == config[v])
        print(name)
        print(f"  rounds executed      : {stats.rounds}")
        print(f"  messages delivered   : {stats.messages}")
        print(f"  messages per round   : {stats.messages_per_round[0]} (= 2|E|)")
        print(f"  monochromatic edges  : {violations}")
        print(f"  proper colouring     : {mrf.is_feasible(config)}\n")

    # The locality guarantee in action: with the same seed, the output of a
    # node depends only on its t-ball, so re-running with more rounds only
    # extends the trajectory deterministically.
    short, _ = run_local_metropolis_protocol(mrf, rounds=10, seed=7)
    long, _ = run_local_metropolis_protocol(mrf, rounds=10, seed=7)
    print(f"determinism check (same seed, same rounds): {np.array_equal(short, long)}")


if __name__ == "__main__":
    main()
