"""Tests for the batched replica-ensemble engines.

The exactness contract: each replica of an ensemble must evolve by the same
Markov kernel as the corresponding sequential chain.  Validated three ways:

* *bitwise* — :class:`EnsembleGlauberDynamics` with one replica reproduces
  :class:`GlauberDynamics` state-for-state from the same seed;
* *stationarity* — after burn-in, the cross-replica empirical distribution
  matches the exact Gibbs distribution (chi-squared on exactly-enumerable
  models);
* *invariants* — the per-round structural invariants of the sequential fast
  paths (monotone monochromatic-edge counts for LocalMetropolis,
  independent-set update sets for LubyGlauber) hold in every replica.
"""

import numpy as np
import pytest
from statutils import assert_same_distribution, assert_stationary

import repro
from repro.chains import GlauberDynamics, LubyGlauberChain
from repro.chains.ensemble import (
    EnsembleGlauberDynamics,
    EnsembleLocalMetropolisColoring,
    EnsembleLubyGlauberColoring,
    EnsembleLubyGlauberMRF,
)
from repro.chains.fastpaths import FastLocalMetropolisColoring
from repro.errors import InfeasibleStateError, ModelError
from repro.graphs import cycle_graph, grid_graph, is_independent_set, path_graph
from repro.mrf import (
    exact_gibbs_distribution,
    hardcore_mrf,
    ising_mrf,
    proper_coloring_mrf,
)

ENSEMBLE_COLORING_CLASSES = (
    EnsembleLocalMetropolisColoring,
    EnsembleLubyGlauberColoring,
)


class TestConstruction:
    @pytest.mark.parametrize("cls", ENSEMBLE_COLORING_CLASSES)
    def test_shapes_and_greedy_start(self, cls):
        ensemble = cls(grid_graph(5, 5), 8, 12, seed=0)
        assert ensemble.config.shape == (12, 25)
        assert ensemble.config.dtype == np.int64
        assert ensemble.is_proper()
        assert ensemble.proper_mask().shape == (12,)

    def test_shared_initial_is_tiled(self):
        initial = np.array([0, 1, 2, 0, 1, 2])
        ensemble = EnsembleLocalMetropolisColoring(
            cycle_graph(6), 4, 5, initial=initial, seed=0
        )
        assert np.array_equal(ensemble.config, np.tile(initial, (5, 1)))

    def test_per_replica_initial(self):
        batch = np.array([[0, 1, 2, 0], [2, 0, 1, 2], [1, 2, 0, 1]])
        ensemble = EnsembleLubyGlauberColoring(path_graph(4), 3, 3, initial=batch, seed=0)
        assert np.array_equal(ensemble.config, batch)

    def test_validation(self):
        with pytest.raises(ModelError):
            EnsembleLocalMetropolisColoring(path_graph(3), 1, 4)
        with pytest.raises(ModelError):
            EnsembleLocalMetropolisColoring(path_graph(3), 3, 0)
        with pytest.raises(ModelError):
            EnsembleLocalMetropolisColoring(path_graph(3), 3, 4, initial=[0, 1])
        with pytest.raises(ModelError):
            EnsembleLocalMetropolisColoring(path_graph(3), 3, 4, initial=[0, 1, 9])
        with pytest.raises(ModelError):
            EnsembleLocalMetropolisColoring(
                path_graph(3), 3, 4, initial=np.zeros((2, 3), dtype=int)
            )

    @pytest.mark.parametrize("cls", ENSEMBLE_COLORING_CLASSES)
    def test_edgeless_graph(self, cls):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        ensemble = cls(graph, 3, 6, seed=0)
        ensemble.run(4)
        assert ensemble.is_proper()

    @pytest.mark.parametrize("cls", ENSEMBLE_COLORING_CLASSES)
    def test_seed_reproducible(self, cls):
        first = cls(grid_graph(4, 4), 8, 7, seed=9).run(12)
        second = cls(grid_graph(4, 4), 8, 7, seed=9).run(12)
        assert np.array_equal(first, second)
        third = cls(grid_graph(4, 4), 8, 7, seed=10).run(12)
        assert not np.array_equal(first, third)

    def test_run_returns_copy(self):
        ensemble = EnsembleLocalMetropolisColoring(cycle_graph(6), 5, 4, seed=0)
        batch = ensemble.run(3)
        batch[:] = 0
        assert not np.array_equal(ensemble.config, batch)


class TestInvariants:
    def test_lm_monochromatic_never_increases(self):
        ensemble = EnsembleLocalMetropolisColoring(
            cycle_graph(30), 6, 16, initial=np.zeros(30, dtype=int), seed=1
        )
        previous = ensemble.monochromatic_edges()
        for _ in range(60):
            ensemble.step()
            current = ensemble.monochromatic_edges()
            assert np.all(current <= previous)
            previous = current
        assert ensemble.is_proper()

    def test_lg_changed_sets_are_independent(self):
        graph = grid_graph(5, 5)
        ensemble = EnsembleLubyGlauberColoring(graph, 9, 8, seed=2)
        for _ in range(15):
            before = ensemble.config
            ensemble.step()
            after = ensemble.config
            for i in range(8):
                changed = np.nonzero(before[i] != after[i])[0]
                assert is_independent_set(graph, changed)

    def test_lg_preserves_propriety(self):
        ensemble = EnsembleLubyGlauberColoring(grid_graph(6, 6), 9, 12, seed=3)
        assert ensemble.is_proper()
        ensemble.run(30)
        assert ensemble.is_proper()

    def test_lg_rejection_guard(self):
        # Same stall instance as the sequential fast-path test: q = 2 on C4
        # from (0, 0, 1, 1) leaves whoever is selected with no available
        # colour in every replica.
        ensemble = EnsembleLubyGlauberColoring(
            cycle_graph(4), 2, 4, initial=np.array([0, 0, 1, 1]), seed=4
        )
        with pytest.raises(ModelError, match="no available"):
            ensemble.step()


class TestStationarity:
    """Cross-replica distribution == exact Gibbs on enumerable models,
    verified by the shared statistical harness (chi-square goodness-of-fit
    plus the exact-TV concentration bound)."""

    @pytest.mark.parametrize("cls", ENSEMBLE_COLORING_CLASSES)
    def test_coloring_ensemble_stationary(self, cls):
        graph = path_graph(3)
        mrf = proper_coloring_mrf(graph, 4)
        gibbs = exact_gibbs_distribution(mrf)
        ensemble = cls(graph, 4, 4000, seed=11)
        assert_stationary(ensemble.run(60), gibbs)

    def test_glauber_ensemble_matches_exact_hardcore(self):
        mrf = hardcore_mrf(path_graph(3), 1.5)
        gibbs = exact_gibbs_distribution(mrf)
        ensemble = EnsembleGlauberDynamics(mrf, 4000, seed=12)
        assert_stationary(ensemble.run(80), gibbs)

    def test_glauber_ensemble_matches_exact_ising(self):
        mrf = ising_mrf(path_graph(3), beta=0.8, field=1.2)
        gibbs = exact_gibbs_distribution(mrf)
        ensemble = EnsembleGlauberDynamics(mrf, 4000, seed=13)
        assert_stationary(ensemble.run(80), gibbs)

    def test_luby_glauber_mrf_matches_exact_hardcore(self):
        mrf = hardcore_mrf(cycle_graph(4), 1.5)
        gibbs = exact_gibbs_distribution(mrf)
        ensemble = EnsembleLubyGlauberMRF(mrf, 4000, seed=14)
        assert_stationary(ensemble.run(60), gibbs)

    def test_luby_glauber_mrf_matches_exact_ising(self):
        mrf = ising_mrf(path_graph(3), beta=0.8, field=1.2)
        gibbs = exact_gibbs_distribution(mrf)
        ensemble = EnsembleLubyGlauberMRF(mrf, 4000, seed=15)
        assert_stationary(ensemble.run(60), gibbs)


class TestSequentialEquivalence:
    def test_glauber_single_replica_bitwise(self):
        """R=1 ensemble Glauber == sequential Glauber, state-for-state."""
        mrf = ising_mrf(path_graph(3), beta=1.6, field=0.8)
        initial = np.array([0, 1, 0])
        sequential = GlauberDynamics(mrf, initial=initial, seed=42)
        ensemble = EnsembleGlauberDynamics(mrf, 1, initial=initial, seed=42)
        for step in range(300):
            sequential.step()
            ensemble.step()
            assert np.array_equal(sequential.config, ensemble.config[0]), step

    def test_glauber_infeasible_state_raises(self):
        # Hardcore on a triangle with both neighbours occupied is fine for
        # the unoccupied vertex, but a colouring with q=2 on a triangle has
        # vertices with no available colour at all.
        mrf = proper_coloring_mrf(cycle_graph(3), 2)
        ensemble = EnsembleGlauberDynamics(
            mrf, 8, initial=np.array([0, 1, 0]), seed=5
        )
        with pytest.raises(InfeasibleStateError):
            ensemble.run(50)

    def test_luby_glauber_mrf_and_sequential_same_distribution(self):
        """Batched MRF heat-bath kernel == sequential LubyGlauberChain.

        The engine-equivalence contract of the vectorized lower-bound
        experiments: the same per-round Markov kernel, verified by the
        two-sample homogeneity test between the batched ensemble and R
        independent sequential chains at a matched round budget.
        """
        mrf = hardcore_mrf(cycle_graph(5), 2.0)
        rounds, replicas = 50, 3000
        ensemble = EnsembleLubyGlauberMRF(mrf, replicas, seed=16)
        batched = ensemble.run(rounds)
        sequential = np.stack(
            [
                LubyGlauberChain(mrf, seed=1000 + i).run(rounds)
                for i in range(replicas // 4)
            ]
        )
        assert_same_distribution(batched, sequential, mrf.q)

    def test_luby_glauber_mrf_infeasible_state_raises(self):
        mrf = proper_coloring_mrf(cycle_graph(3), 2)
        ensemble = EnsembleLubyGlauberMRF(
            mrf, 8, initial=np.array([0, 1, 0]), seed=5
        )
        with pytest.raises(InfeasibleStateError):
            ensemble.run(50)

    def test_luby_glauber_mrf_dispatch_and_feasibility(self):
        mrf = hardcore_mrf(cycle_graph(6), 1.0)
        ensemble = repro.make_ensemble(mrf, 5, method="luby-glauber", seed=6)
        assert isinstance(ensemble, EnsembleLubyGlauberMRF)
        batch = ensemble.run(10)
        assert batch.shape == (5, 6)
        assert all(mrf.is_feasible(row) for row in batch)
        assert ensemble.is_feasible().all()

    def test_lm_ensemble_and_sequential_same_distribution(self):
        """Both implementations reproduce the exact edge pair-marginal.

        The exact (0, 1) pair marginal is itself a distribution over
        ``[q]^2``, so both implementations' restricted batches go through
        the shared stationarity assertion — the sequential chain's
        consecutive states are dependent, hence the effective-sample-size
        form of the bound.
        """
        from repro.mrf.distribution import GibbsDistribution

        graph = cycle_graph(4)
        mrf = proper_coloring_mrf(graph, 5)
        gibbs = exact_gibbs_distribution(mrf)
        pair_target = GibbsDistribution(2, 5, gibbs.pair_marginal(0, 1).ravel())

        ensemble = EnsembleLocalMetropolisColoring(graph, 5, 4000, seed=7)
        batch = ensemble.run(60)
        assert_stationary(batch[:, [0, 1]], pair_target)

        sequential = FastLocalMetropolisColoring(graph, 5, seed=8)
        sequential.run(60)
        samples = []
        for _ in range(8000):
            sequential.step()
            sequential.step()
            samples.append((int(sequential.config[0]), int(sequential.config[1])))
        assert_stationary(samples, pair_target, effective_samples=1500)


class TestSampleMany:
    def test_shape_and_feasibility_all_methods(self):
        mrf = proper_coloring_mrf(cycle_graph(8), 6)
        for method in repro.METHODS:
            batch = repro.sample_many(mrf, 10, method=method, seed=1)
            assert batch.shape == (10, 8)
            assert all(mrf.is_feasible(row) for row in batch)

    def test_seed_reproducible(self):
        mrf = proper_coloring_mrf(grid_graph(4, 4), 8)
        first = repro.sample_many(mrf, 6, seed=3)
        second = repro.sample_many(mrf, 6, seed=3)
        assert np.array_equal(first, second)

    def test_generic_model_fallback(self):
        mrf = ising_mrf(path_graph(4), beta=0.6, field=1.0)
        for method in repro.METHODS:
            batch = repro.sample_many(mrf, 4, method=method, rounds=12, seed=2)
            assert batch.shape == (4, 4)
            assert np.all((batch >= 0) & (batch < 2))

    def test_explicit_rounds_and_initial_batch(self):
        mrf = proper_coloring_mrf(cycle_graph(6), 5)
        initial = np.tile(np.array([0, 1, 2, 0, 1, 2]), (3, 1))
        batch = repro.sample_many(mrf, 3, rounds=5, seed=4, initial=initial)
        assert batch.shape == (3, 6)

    def test_rejects_bad_arguments(self):
        mrf = proper_coloring_mrf(cycle_graph(6), 5)
        with pytest.raises(ModelError, match="r >= 1"):
            repro.sample_many(mrf, 0)
        with pytest.raises(ModelError, match="unknown method"):
            repro.sample_many(mrf, 4, method="simulated-annealing")

    def test_stationary_through_api(self):
        mrf = proper_coloring_mrf(path_graph(3), 4)
        gibbs = exact_gibbs_distribution(mrf)
        batch = repro.sample_many(mrf, 3000, rounds=60, seed=5)
        assert_stationary(batch, gibbs)
