"""Result encoding for the serving wire format.

One encoder/decoder pair per job kind, chosen so the round trip is
*bit-exact*: sample batches are int64 arrays (integers survive JSON
verbatim), TV values are float64 (``json`` emits the shortest repr, which
``float()`` parses back to the identical bits).  The serve test-suite
asserts end-to-end bit-identity against direct :mod:`repro.api` calls on
the strength of this module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServeError
from repro.spec import JOB_KINDS

__all__ = ["encode_result", "decode_result"]


def encode_result(kind: str, result):
    """Encode a job result into its plain-JSON wire form."""
    if kind == "sample_many":
        return np.asarray(result, dtype=np.int64).tolist()
    if kind == "tv_curve":
        return [[int(rounds), float(tv)] for rounds, tv in result]
    if kind == "mixing_time":
        return int(result)
    raise ServeError(f"unknown job kind {kind!r}; choose from {JOB_KINDS}")


def decode_result(kind: str, payload):
    """Decode a wire-form result back into the :mod:`repro.api` return type."""
    if kind == "sample_many":
        return np.asarray(payload, dtype=np.int64)
    if kind == "tv_curve":
        return [(int(rounds), float(tv)) for rounds, tv in payload]
    if kind == "mixing_time":
        return int(payload)
    raise ServeError(f"unknown job kind {kind!r}; choose from {JOB_KINDS}")
