"""Scalar observables of configurations.

The experiments and diagnostics monitor chains through scalar summaries;
this module collects the standard ones so examples, tests and benchmarks
share one audited implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError
from repro.mrf.model import MRF

__all__ = [
    "occupancy",
    "magnetisation",
    "monochromatic_edges",
    "edge_agreement_fraction",
    "hamming_distance",
    "color_histogram",
]


def occupancy(config: Sequence[int]) -> int:
    """Number of vertices with spin 1 — the hardcore model's |I|."""
    return int(np.asarray(config).sum()) if len(config) else 0


def magnetisation(config: Sequence[int]) -> float:
    """``|2 * (fraction of spin-1 vertices) - 1|`` for two-state models."""
    config = np.asarray(config)
    if config.size == 0:
        raise ModelError("magnetisation of an empty configuration")
    return abs(2.0 * float(config.mean()) - 1.0)


def monochromatic_edges(mrf: MRF, config: Sequence[int]) -> int:
    """Number of edges whose endpoints share a spin (colouring violations)."""
    return sum(1 for u, v in mrf.edges if config[u] == config[v])


def edge_agreement_fraction(mrf: MRF, config: Sequence[int]) -> float:
    """Fraction of edges with equal endpoint spins — the Ising energy proxy."""
    if not mrf.edges:
        raise ModelError("edge_agreement_fraction needs at least one edge")
    return monochromatic_edges(mrf, config) / len(mrf.edges)


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of coordinates where two configurations differ."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ModelError(f"hamming_distance shapes differ: {a.shape} vs {b.shape}")
    return int((a != b).sum())


def color_histogram(config: Sequence[int], q: int) -> np.ndarray:
    """Counts of each spin value, as a length-q vector."""
    config = np.asarray(config)
    if config.size and (config.min() < 0 or config.max() >= q):
        raise ModelError(f"spins outside 0..{q - 1}")
    histogram = np.zeros(q, dtype=np.int64)
    for spin in config:
        histogram[int(spin)] += 1
    return histogram
